// Fault model: deterministic node-failure and straggler injection for the
// simulated machine.
//
// The paper's runs execute on a real supercomputer whose nodes fail and
// straggle; Balsam's job state machine (RUN_ERROR, RESTART_READY, FAILED)
// exists precisely because the substrate is imperfect. The seed repository
// assumed a perfect machine. FaultModel closes that gap: it generates a
// reproducible timeline of node-down/node-up events from per-node MTBF/MTTR
// exponentials, plus per-job straggler multipliers, all seeded through
// internal/rng so a fault-injected run replays bit-for-bit from its seed.
//
// The zero value disables every fault mechanism and must leave simulations
// byte-identical to a fault-free substrate.
package hpc

import (
	"sort"

	"nasgo/internal/rng"
)

// FaultModel configures fault injection for a simulated node pool. The zero
// value injects nothing.
type FaultModel struct {
	// MTBF is the per-node mean time between failures in virtual seconds;
	// 0 disables node failures.
	MTBF float64
	// MTTR is the per-node mean time to repair in virtual seconds
	// (default 600 when MTBF is set).
	MTTR float64
	// StragglerProb is the probability that a dispatched job lands on a
	// transiently slow node; 0 disables stragglers.
	StragglerProb float64
	// StragglerSlowdown is the maximum execution-time multiplier of a
	// straggling job; multipliers are uniform in [1, StragglerSlowdown]
	// (default 4 when StragglerProb is set).
	StragglerSlowdown float64
	// Seed drives the failure timeline and straggler draws.
	Seed uint64
}

// Enabled reports whether the model injects any faults at all.
func (f FaultModel) Enabled() bool { return f.MTBF > 0 || f.StragglerProb > 0 }

// WithDefaults fills the dependent defaults (MTTR, StragglerSlowdown) for
// whichever mechanisms are enabled.
func (f FaultModel) WithDefaults() FaultModel {
	if f.MTBF > 0 && f.MTTR <= 0 {
		f.MTTR = 600
	}
	if f.StragglerProb > 0 && f.StragglerSlowdown <= 1 {
		f.StragglerSlowdown = 4
	}
	return f
}

// NodeEvent is one point of a failure timeline: at Time, Node goes down
// (Down=true) or comes back up (Down=false).
type NodeEvent struct {
	Time float64
	Node int
	Down bool
}

// Timeline pre-generates the node-down/node-up events for a pool of the
// given size, ordered by time (ties broken by node index, down before up).
// Down events are generated up to the horizon; every down event's matching
// repair is always included, even past the horizon, so a machine never ends
// a run with nodes permanently dark and jobs stranded in the queue.
//
// Each node draws from its own child stream, so the timeline is a pure
// function of (Seed, nodes, horizon).
func (f FaultModel) Timeline(nodes int, horizon float64) []NodeEvent {
	f = f.WithDefaults()
	if f.MTBF <= 0 || horizon <= 0 {
		return nil
	}
	root := rng.New(f.Seed ^ 0xfa017)
	var events []NodeEvent
	for n := 0; n < nodes; n++ {
		r := root.Split()
		t := 0.0
		for {
			t += r.Exp() * f.MTBF
			if t >= horizon {
				break
			}
			events = append(events, NodeEvent{Time: t, Node: n, Down: true})
			t += r.Exp() * f.MTTR
			events = append(events, NodeEvent{Time: t, Node: n, Down: false})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Down && !b.Down
	})
	return events
}

// StragglerStream returns the generator that Straggler draws from. Keeping
// it separate from the failure timeline means enabling stragglers does not
// perturb the failure schedule and vice versa.
func (f FaultModel) StragglerStream() *rng.Rand {
	return rng.New(f.Seed ^ 0x57a661e2)
}

// Straggler returns the execution-time multiplier for one dispatched job:
// 1 for a healthy node, uniform in (1, StragglerSlowdown] for a straggler.
// With StragglerProb == 0 it returns 1 without consuming randomness.
func (f FaultModel) Straggler(r *rng.Rand) float64 {
	f = f.WithDefaults()
	if f.StragglerProb <= 0 {
		return 1
	}
	if r.Float64() >= f.StragglerProb {
		return 1
	}
	return 1 + r.Float64()*(f.StragglerSlowdown-1)
}
