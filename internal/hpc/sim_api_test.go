package hpc

import (
	"testing"

	"nasgo/internal/trace"
)

// fireLog is a minimal Handler recording its fire times.
type fireLog struct {
	sim   *Sim
	times []float64
}

func (f *fireLog) Fire() { f.times = append(f.times, f.sim.Now()) }

// TestSimSchedulingAPIs drives every scheduling entry point — At, AtE,
// AtTime, AtHandlerE, AtTimeHandler — on one simulator and checks they
// interleave in exact (time, seq) order, that the E-variants report the
// (time, seq) the event actually fires with, and that a recorder attached
// via SetRecorder sees one CatSim dispatch per event stamped with the
// virtual clock.
func TestSimSchedulingAPIs(t *testing.T) {
	s := NewSim()
	rec := trace.NewRecorder(64)
	s.SetRecorder(rec)
	if s.Recorder() != rec {
		t.Fatal("Recorder() did not return the attached recorder")
	}

	var order []string
	h := &fireLog{sim: s}
	s.At(4, func() { order = append(order, "at") })
	et, es := s.AtE(2, func() { order = append(order, "ate") })
	if et != 2 || es != 2 {
		t.Fatalf("AtE returned (%g, %d), want (2, 2)", et, es)
	}
	if seq := s.AtTime(3, func() { order = append(order, "attime") }); seq != 3 {
		t.Fatalf("AtTime seq = %d, want 3", seq)
	}
	ht, hs := s.AtHandlerE(1, h)
	if ht != 1 || hs != 4 {
		t.Fatalf("AtHandlerE returned (%g, %d), want (1, 4)", ht, hs)
	}
	if seq := s.AtTimeHandler(3, h); seq != 5 {
		t.Fatalf("AtTimeHandler seq = %d, want 5", seq)
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", s.Pending())
	}

	if !s.RunUntil(10) {
		t.Fatal("RunUntil(10) should drain the queue")
	}
	if s.Now() != 4 {
		t.Fatalf("RunUntil left clock at %g, want 4 (last event, not horizon)", s.Now())
	}
	want := []string{"ate", "attime", "at"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("closure order %v, want %v", order, want)
		}
	}
	if len(h.times) != 2 || h.times[0] != 1 || h.times[1] != 3 {
		t.Fatalf("handler fired at %v, want [1 3]", h.times)
	}
	events := rec.Events()
	if len(events) != 5 {
		t.Fatalf("recorder saw %d events, want 5", len(events))
	}
	dispatchAt := []float64{1, 2, 3, 3, 4}
	for i, ev := range events {
		if ev.Cat != trace.CatSim || ev.Name != trace.EvDispatch || ev.Time != dispatchAt[i] {
			t.Fatalf("event %d = %+v, want CatSim dispatch at t=%g", i, ev, dispatchAt[i])
		}
	}
}

// TestSimRunUntilPartial pins the not-drained contract: RunUntil stops at
// the horizon without advancing the clock past the last processed event.
func TestSimRunUntilPartial(t *testing.T) {
	s := NewSim()
	fired := 0
	s.At(1, func() { fired++ })
	s.At(8, func() { fired++ })
	if s.RunUntil(5) {
		t.Fatal("RunUntil(5) reported drained with an event at t=8 pending")
	}
	if fired != 1 || s.Now() != 1 || s.Pending() != 1 {
		t.Fatalf("after RunUntil(5): fired=%d now=%g pending=%d, want 1/1/1", fired, s.Now(), s.Pending())
	}
}

// TestScheduleResumeReplaysInOrder pins the checkpoint-resume contract: a
// frontier of (Time, Seq) pairs handed to ScheduleResume in any order is
// re-enqueued on a NewSimAt simulator so that same-time events keep their
// original relative order, interleaved correctly with newly scheduled work.
func TestScheduleResumeReplaysInOrder(t *testing.T) {
	s := NewSimAt(100)
	if s.Now() != 100 {
		t.Fatalf("NewSimAt clock = %g, want 100", s.Now())
	}
	var order []int
	mk := func(id int) func() { return func() { order = append(order, id) } }
	// Deliberately unsorted, with a same-time tie decided by original seq.
	frontier := []ResumeEvent{
		{Time: 150, Seq: 9, Schedule: func() { s.AtTime(150, mk(2)) }},
		{Time: 120, Seq: 4, Schedule: func() { s.AtTime(120, mk(0)) }},
		{Time: 150, Seq: 7, Schedule: func() { s.AtTime(150, mk(1)) }},
	}
	ScheduleResume(frontier)
	s.AtTime(150, mk(3)) // scheduled after the replay: fires last of the 150s
	s.RunAll()
	for i, w := range []int{0, 1, 2, 3} {
		if order[i] != w {
			t.Fatalf("resume order %v, want [0 1 2 3]", order)
		}
	}
	if s.Now() != 150 {
		t.Fatalf("clock = %g, want 150", s.Now())
	}
}

// TestSimHandlerPanics covers the past-scheduling guards of the Handler
// entry points, mirroring TestSimNegativeDelayPanics.
func TestSimHandlerPanics(t *testing.T) {
	h := &fireLog{}
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	s := NewSimAt(10)
	expectPanic("AtHandlerE negative delay", func() { s.AtHandlerE(-1, h) })
	expectPanic("AtTimeHandler in the past", func() { s.AtTimeHandler(5, h) })
}
