package modelio

import (
	"os"
	"path/filepath"
	"testing"

	"nasgo/internal/candle"
	"nasgo/internal/nn"
	"nasgo/internal/rng"
	"nasgo/internal/space"
	"nasgo/internal/train"
)

// trainedModel builds and briefly trains a Combo architecture.
func trainedModel(t *testing.T) (*space.Space, []int, []int, *nn.Model, *candle.Benchmark) {
	t.Helper()
	bench := candle.NewCombo(candle.Config{Seed: 1})
	sp := space.NewComboSmall()
	choices := make([]int, sp.NumDecisions())
	for i := range choices {
		if _, ok := sp.Decision(i).Ops[0].(space.ConnectOp); !ok {
			choices[i] = 1
		}
	}
	dims := bench.Train.InputDims()
	ir, err := sp.Compile(choices, dims, bench.UnitScale)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	m := ir.BuildModel(r.Split())
	train.Fit(m, bench.Train.Slice(0, 400), train.Config{Epochs: 2, BatchSize: 32, Rand: r.Split()})
	return sp, choices, dims, m, bench
}

func TestSaveLoadRoundTrip(t *testing.T) {
	sp, choices, dims, m, bench := trainedModel(t)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := Save(path, sp, choices, dims, bench.UnitScale, m); err != nil {
		t.Fatal(err)
	}
	loaded, ir, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if ir.SpaceName != sp.Name {
		t.Fatalf("IR space %q", ir.SpaceName)
	}
	// Identical predictions on validation data.
	want := m.Predict(bench.Val.Inputs)
	got := loaded.Predict(bench.Val.Inputs)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("prediction %d differs after round trip: %g vs %g", i, want.Data[i], got.Data[i])
		}
	}
}

func TestLoadRejectsCustomSpaceWithoutDefinition(t *testing.T) {
	bench := candle.NewCombo(candle.Config{Seed: 3})
	sp := space.NewComboSmallUnshared() // not in ByName's catalog
	choices := make([]int, sp.NumDecisions())
	dims := bench.Train.InputDims()
	ir, err := sp.Compile(choices, dims, bench.UnitScale)
	if err != nil {
		t.Fatal(err)
	}
	m := ir.BuildModel(rng.New(4))
	path := filepath.Join(t.TempDir(), "custom.gob")
	if err := Save(path, sp, choices, dims, bench.UnitScale, m); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(path); err == nil {
		t.Fatal("Load must reject non-catalog spaces")
	}
	loaded, _, err := LoadWithSpace(path, space.NewComboSmallUnshared())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ParamCount() != m.ParamCount() {
		t.Fatal("LoadWithSpace parameter mismatch")
	}
}

func TestLoadWithWrongSpaceFails(t *testing.T) {
	sp, choices, dims, m, bench := trainedModel(t)
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := Save(path, sp, choices, dims, bench.UnitScale, m); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadWithSpace(path, space.NewUnoSmall()); err == nil {
		t.Fatal("expected space-name mismatch error")
	}
}

func TestSaveInvalidChoices(t *testing.T) {
	sp, _, dims, m, bench := trainedModel(t)
	if err := Save(filepath.Join(t.TempDir(), "x.gob"), sp, []int{1, 2}, dims, bench.UnitScale, m); err == nil {
		t.Fatal("expected choice validation error")
	}
}

func TestLoadGarbageFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.gob")
	if err := os.WriteFile(path, []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(path); err == nil {
		t.Fatal("expected decode error")
	}
	if _, _, err := Load(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("expected missing-file error")
	}
}
