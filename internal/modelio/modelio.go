// Package modelio persists trained NAS models. A saved model is the
// architecture's identity — search-space name, choice vector, input
// dimensions, unit scale — together with the trained parameter values, so
// a post-trained network can be shipped and reloaded without retraining:
//
//	modelio.Save(path, sp, choices, dims, scale, model)
//	model, ir, err := modelio.Load(path)          // catalog spaces
//	model, ir, err := modelio.LoadWithSpace(path, customSpace)
//
// The format is a single gob stream (stdlib-only, self-describing enough
// for this purpose). Loading recompiles the architecture through the same
// IR path used everywhere else, then installs the saved weights, so a
// loaded model is structurally identical to the saved one by construction.
package modelio

import (
	"encoding/gob"
	"fmt"
	"io"

	"nasgo/internal/ckpt"
	"nasgo/internal/fsim"
	"nasgo/internal/nn"
	"nasgo/internal/rng"
	"nasgo/internal/space"
)

// fileMagic guards against feeding arbitrary gob files in.
const fileMagic = "nasgo-model-v1"

// saved is the on-disk representation.
type saved struct {
	Magic     string
	SpaceName string
	Choices   []int
	InputDims []int
	UnitScale float64
	// Values is the flattened parameter vector in ParamSet order, which
	// is deterministic given the architecture.
	Values []float64
}

// Save writes a trained model built from (sp, choices, inputDims,
// unitScale) to path.
func Save(path string, sp *space.Space, choices []int, inputDims []int, unitScale float64, m *nn.Model) error {
	return SaveFS(fsim.OS, path, sp, choices, inputDims, unitScale, m)
}

// SaveFS is Save through an explicit filesystem.
func SaveFS(fsys fsim.FS, path string, sp *space.Space, choices []int, inputDims []int, unitScale float64, m *nn.Model) error {
	if err := sp.CheckChoices(choices); err != nil {
		return fmt.Errorf("modelio: %w", err)
	}
	s := saved{
		Magic:     fileMagic,
		SpaceName: sp.Name,
		Choices:   append([]int(nil), choices...),
		InputDims: append([]int(nil), inputDims...),
		UnitScale: unitScale,
		Values:    m.Params().FlattenValues(),
	}
	return ckpt.AtomicWriteFS(fsys, path, func(w io.Writer) error {
		if err := gob.NewEncoder(w).Encode(&s); err != nil {
			return fmt.Errorf("modelio: encode %s: %w", path, err)
		}
		return nil
	})
}

// Load reads a model whose space is in the catalog (combo-small etc.).
func Load(path string) (*nn.Model, *space.ArchIR, error) {
	return LoadFS(fsim.OS, path)
}

// LoadFS is Load through an explicit filesystem.
func LoadFS(fsys fsim.FS, path string) (*nn.Model, *space.ArchIR, error) {
	s, err := read(fsys, path)
	if err != nil {
		return nil, nil, err
	}
	sp, err := space.ByName(s.SpaceName)
	if err != nil {
		return nil, nil, fmt.Errorf("modelio: %s was saved from a non-catalog space %q; use LoadWithSpace", path, s.SpaceName)
	}
	return build(s, sp)
}

// LoadWithSpace reads a model saved from a custom space; the caller
// supplies the identical space definition.
func LoadWithSpace(path string, sp *space.Space) (*nn.Model, *space.ArchIR, error) {
	s, err := read(fsim.OS, path)
	if err != nil {
		return nil, nil, err
	}
	if sp.Name != s.SpaceName {
		return nil, nil, fmt.Errorf("modelio: %s was saved from space %q, got %q", path, s.SpaceName, sp.Name)
	}
	return build(s, sp)
}

func read(fsys fsim.FS, path string) (*saved, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var s saved
	if err := gob.NewDecoder(f).Decode(&s); err != nil {
		return nil, fmt.Errorf("modelio: decode %s: %w", path, err)
	}
	if s.Magic != fileMagic {
		return nil, fmt.Errorf("modelio: %s is not a nasgo model file", path)
	}
	return &s, nil
}

func build(s *saved, sp *space.Space) (*nn.Model, *space.ArchIR, error) {
	ir, err := sp.Compile(s.Choices, s.InputDims, s.UnitScale)
	if err != nil {
		return nil, nil, fmt.Errorf("modelio: recompile: %w", err)
	}
	// The initializer RNG is irrelevant — weights are overwritten — but
	// building needs one.
	m := ir.BuildModel(rng.New(0))
	if m.Params().Count() != len(s.Values) {
		return nil, nil, fmt.Errorf("modelio: saved %d values, model has %d parameters (space definition drifted?)",
			len(s.Values), m.Params().Count())
	}
	m.Params().SetValues(s.Values)
	return m, ir, nil
}
