// Package balsam simulates the Balsam workflow service the paper uses to
// run reward-estimation tasks on Theta (§4, Fig. 3): a job database, a
// pilot-job launcher that dispatches queued jobs onto idle worker nodes,
// and the utilization monitoring the paper's Figures 5, 6, and 9 report.
//
// The real Balsam is a Django/PostgreSQL service polled by MPI ranks; here
// the database is in memory and the launcher runs on the discrete-event
// simulator, but the state machine (CREATED → RUNNING → JOB_FINISHED, with
// RUN_TIMEOUT for killed tasks and RUN_ERROR → RESTART_READY → … → FAILED
// for tasks whose node dies) and the scheduling dynamics — FIFO queue, one
// job per node, dispatch on idle — are preserved, because those dynamics
// are what produce the paper's utilization curves.
//
// Fault injection: a Service built with NewServiceWithOptions and a nonzero
// hpc.FaultModel tracks per-node up/down state in a NodePool, kills jobs
// whose node dies mid-run, requeues them with capped exponential backoff in
// virtual time (terminal FAILED after MaxRetries), and slows straggling
// jobs. Utilization accounting distinguishes busy, idle, and dead
// node-seconds, so MeanUtilization and UtilizationSeries report the busy
// fraction of *available* capacity. With the zero FaultModel the service
// behaves bit-for-bit like the fault-free original.
package balsam

import (
	"fmt"
	"math"
	mathbits "math/bits"
	"sort"

	"nasgo/internal/hpc"
	"nasgo/internal/rng"
	"nasgo/internal/trace"
)

// JobState is the lifecycle state of a job.
type JobState string

const (
	// StateCreated means queued, waiting for a free node.
	StateCreated JobState = "CREATED"
	// StateRunning means executing on a worker node.
	StateRunning JobState = "RUNNING"
	// StateFinished means completed normally.
	StateFinished JobState = "JOB_FINISHED"
	// StateTimeout means the task hit its wall-clock limit and was killed
	// after producing a partial result.
	StateTimeout JobState = "RUN_TIMEOUT"
	// StateRunError means the job's node died mid-run; the job waits out
	// its retry backoff in this state.
	StateRunError JobState = "RUN_ERROR"
	// StateRestartReady means a killed job finished its backoff and is
	// queued for another attempt.
	StateRestartReady JobState = "RESTART_READY"
	// StateFailed is terminal: the job was killed more than MaxRetries
	// times and will not run again.
	StateFailed JobState = "FAILED"
)

// Job is one reward-estimation task.
type Job struct {
	ID      int64
	AgentID int
	// Key identifies the architecture being evaluated.
	Key string
	// Duration is the task's virtual execution time in seconds (before any
	// straggler slowdown).
	Duration float64
	// TimedOut marks a task that will end in StateTimeout.
	TimedOut bool
	State    JobState
	// Attempts counts how many times the job started running on a node.
	Attempts int
	// Node is the worker node currently running the job (-1 when none).
	Node int

	SubmitTime, StartTime, EndTime float64

	// Payload carries the evaluator's result through the queue; balsam
	// treats it as opaque.
	Payload interface{}
	// OnDone fires when the job reaches a terminal state (JOB_FINISHED,
	// RUN_TIMEOUT, or FAILED).
	OnDone func(*Job)

	// fire tracks the job's pending simulator event — the completion event
	// while RUNNING, the requeue event while RUN_ERROR — so a checkpoint can
	// capture and later re-enqueue it at the exact same (time, seq) position.
	fire *jobEvent
}

// jobEvent is one pending simulator event the service owns — a job's
// completion, its requeue after backoff, or a restored stale no-op. It
// implements hpc.Handler and is recycled through the service's free list,
// so the steady-state dispatch cycle schedules without allocating. A record
// is distinct per dispatch and deliberately NOT embedded in the Job: after
// a kill, the orphaned completion of the dead attempt and the completion of
// the retry coexist in the event queue, and sharing a record would let the
// stale one fire as valid.
type jobEvent struct {
	s       *Service
	job     *Job
	attempt int
	kind    int
	time    float64
	seq     int64
	// nextFree links recycled records into the service's free list.
	nextFree *jobEvent
}

const (
	evComplete = iota
	evRequeue
	// evStale is a restored orphaned completion: the original closure is
	// gone, so it fires purely as its removeStale bookkeeping no-op.
	evStale
)

// Fire dispatches the event when the simulator reaches its (time, seq)
// slot.
func (e *jobEvent) Fire() {
	switch e.kind {
	case evComplete:
		e.s.complete(e)
	case evRequeue:
		e.s.requeue(e)
	case evStale:
		s := e.s
		s.removeStale(e)
		s.recycle(e)
	}
}

// NodeState is the availability state of one worker node.
type NodeState int

const (
	// NodeIdle means up and waiting for work.
	NodeIdle NodeState = iota
	// NodeBusy means up and running a job.
	NodeBusy
	// NodeDown means failed and awaiting repair.
	NodeDown
)

// NodePool tracks per-node state instead of a bare busy counter, so node
// failures can target (and kill the job of) a specific node.
type NodePool struct {
	states []NodeState
	jobs   []*Job
	// idle mirrors states as a bitmap (bit i set iff node i is idle), so
	// Acquire's lowest-idle-index search is a word scan plus TrailingZeros
	// instead of a byte-per-node walk — the difference between O(n) and
	// O(n/64) per dispatch at Theta-scale node counts. The selection is
	// unchanged, only its cost.
	idle []uint64
	busy int
	down int
}

// NewNodePool creates a pool of n idle nodes.
func NewNodePool(n int) *NodePool {
	p := &NodePool{states: make([]NodeState, n), jobs: make([]*Job, n), idle: make([]uint64, (n+63)/64)}
	for i := 0; i < n; i++ {
		p.idle[i>>6] |= 1 << (uint(i) & 63)
	}
	return p
}

// rebuildIdle reconstitutes the idle bitmap from states — for restore
// paths that poke states directly.
func (p *NodePool) rebuildIdle() {
	for w := range p.idle {
		p.idle[w] = 0
	}
	for i, st := range p.states {
		if st == NodeIdle {
			p.idle[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// Len returns the pool size.
func (p *NodePool) Len() int { return len(p.states) }

// State returns node i's availability state.
func (p *NodePool) State(i int) NodeState { return p.states[i] }

// JobOn returns the job running on node i (nil when idle or down).
func (p *NodePool) JobOn(i int) *Job { return p.jobs[i] }

// Busy returns the number of nodes running jobs.
func (p *NodePool) Busy() int { return p.busy }

// Down returns the number of failed nodes.
func (p *NodePool) Down() int { return p.down }

// Acquire assigns job to the lowest-indexed idle node and returns its
// index, or -1 when every node is busy or down. Lowest-index-first keeps
// the schedule deterministic.
func (p *NodePool) Acquire(job *Job) int {
	if p.busy+p.down == len(p.states) {
		// Saturated machine: the launcher polls on every completion, so
		// this is the hot miss — answer it without touching the bitmap.
		return -1
	}
	for w, bits := range p.idle {
		if bits == 0 {
			continue
		}
		i := w<<6 + mathbits.TrailingZeros64(bits)
		p.idle[w] = bits &^ (1 << (uint(i) & 63))
		p.states[i] = NodeBusy
		p.jobs[i] = job
		p.busy++
		return i
	}
	return -1
}

// Release returns a busy node to idle.
func (p *NodePool) Release(i int) {
	if p.states[i] != NodeBusy {
		panic(fmt.Sprintf("balsam: release of non-busy node %d", i))
	}
	p.states[i] = NodeIdle
	p.idle[i>>6] |= 1 << (uint(i) & 63)
	p.jobs[i] = nil
	p.busy--
}

// SetDown marks a node failed; a busy node's job must be killed first.
func (p *NodePool) SetDown(i int) {
	switch p.states[i] {
	case NodeBusy:
		p.busy--
	case NodeDown:
		return
	}
	p.states[i] = NodeDown
	p.idle[i>>6] &^= 1 << (uint(i) & 63)
	p.jobs[i] = nil
	p.down++
}

// SetUp repairs a down node back to idle.
func (p *NodePool) SetUp(i int) {
	if p.states[i] != NodeDown {
		return
	}
	p.states[i] = NodeIdle
	p.idle[i>>6] |= 1 << (uint(i) & 63)
	p.down--
}

// Options configures the fault-tolerance behaviour of a Service.
type Options struct {
	// Faults injects node failures and stragglers; the zero value leaves
	// the machine perfect.
	Faults hpc.FaultModel
	// FaultHorizon bounds failure injection in virtual seconds (default
	// 6 h, the paper's wall-clock budget). Repairs for failures inside the
	// horizon always complete, even past it.
	FaultHorizon float64
	// MaxRetries is how many times a killed job is requeued before it goes
	// terminal FAILED (default 3; negative means no retries — the first
	// kill is terminal).
	MaxRetries int
	// BackoffBase is the first requeue delay in virtual seconds
	// (default 15); each further retry doubles it.
	BackoffBase float64
	// BackoffCap caps the exponential backoff (default 240).
	BackoffCap float64
	// NoUtilizationSeries disables retention of the per-transition
	// utilization series (UtilizationSeries then returns nil); the busy/down
	// integrals — and with them MeanUtilization — are unaffected. Million-
	// event runs (the simbench experiment, the allocation gate) set it: the
	// series grows by one point per job transition, which is both unbounded
	// memory and the one steady-state allocation left in the dispatch cycle.
	NoUtilizationSeries bool
}

func (o Options) withDefaults() Options {
	o.Faults = o.Faults.WithDefaults()
	if o.FaultHorizon <= 0 {
		o.FaultHorizon = 6 * 3600
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 15
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 240
	}
	return o
}

// Service is the in-memory job database plus launcher.
type Service struct {
	sim  *hpc.Sim
	pool *NodePool
	opts Options
	// queue[qhead:] is the launcher queue front-to-back; dispatch advances
	// qhead instead of reslicing so the backing array is reused once the
	// queue drains — append never reallocates in steady state.
	queue  []*Job
	qhead  int
	nextID int64

	// jobs holds the live (non-terminal) jobs; terminal jobs are evicted so
	// the table stays bounded over millions of submissions. The evaluator
	// only ever looks up in-flight jobs (Relink after a restore).
	jobs map[int64]*Job

	// freeEvents recycles jobEvent records (see jobEvent).
	freeEvents *jobEvent

	stragglerRand *rng.Rand

	// Fault timeline bookkeeping: the generated timeline plus, per event,
	// its scheduled (time, seq) and whether it has fired — so a checkpoint
	// knows exactly which injections are still ahead.
	timeline      []hpc.NodeEvent
	timelineTime  []float64
	timelineSeq   []int64
	timelineFired []bool

	// stale holds orphaned completion events of killed jobs. They are
	// behavioural no-ops but still advance the virtual clock when they fire,
	// so checkpoints must carry them to keep resumed runs bit-identical.
	stale []*jobEvent

	// Utilization accounting: integrals of busy and down node counts over
	// time plus a transition log for time series.
	lastChange   float64
	busy         int
	down         int
	busyIntegral float64
	downIntegral float64
	transitions  []UtilizationPoint

	finished     int
	failed       int
	retries      int
	nodeFailures int
}

// UtilizationPoint is one step of the piecewise-constant utilization curve:
// from Time onward, Busy nodes were occupied and Down nodes were dead
// (until the next point).
type UtilizationPoint struct {
	Time float64
	Busy int
	Down int
}

// NewService creates a service managing the given number of worker nodes on
// a perfect machine (no faults).
func NewService(sim *hpc.Sim, nodes int) *Service {
	return NewServiceWithOptions(sim, nodes, Options{})
}

// NewServiceWithOptions creates a service with fault-tolerance options.
// With the zero Options the service is indistinguishable from NewService.
func NewServiceWithOptions(sim *hpc.Sim, nodes int, opts Options) *Service {
	s := newService(sim, nodes, opts)
	s.lastChange = sim.Now()
	if !s.opts.NoUtilizationSeries {
		s.transitions = append(s.transitions, UtilizationPoint{Time: sim.Now()})
	}
	now := sim.Now()
	for i, ev := range s.timeline {
		delay := ev.Time - now
		if delay < 0 {
			delay = 0
		}
		s.scheduleTimelineEvent(i, now+delay)
	}
	return s
}

// newService builds the service skeleton shared by the fresh and restored
// constructors: node pool, options, straggler stream, and the regenerated
// (but not yet scheduled) fault timeline.
func newService(sim *hpc.Sim, nodes int, opts Options) *Service {
	if nodes <= 0 {
		panic("balsam: need at least one worker node")
	}
	opts = opts.withDefaults()
	s := &Service{sim: sim, pool: NewNodePool(nodes), opts: opts, jobs: map[int64]*Job{}}
	if opts.Faults.StragglerProb > 0 {
		s.stragglerRand = opts.Faults.StragglerStream()
	}
	s.timeline = opts.Faults.Timeline(nodes, opts.FaultHorizon)
	s.timelineTime = make([]float64, len(s.timeline))
	s.timelineSeq = make([]int64, len(s.timeline))
	s.timelineFired = make([]bool, len(s.timeline))
	return s
}

// newJobEvent takes a record off the free list (or allocates one while the
// pool warms up) and binds it to a job, attempt, and kind.
func (s *Service) newJobEvent(job *Job, attempt, kind int) *jobEvent {
	e := s.freeEvents
	if e == nil {
		e = &jobEvent{s: s}
	} else {
		s.freeEvents = e.nextFree
	}
	e.job, e.attempt, e.kind = job, attempt, kind
	return e
}

// recycle returns a fired event record to the free list.
func (s *Service) recycle(e *jobEvent) {
	e.job = nil
	e.nextFree = s.freeEvents
	s.freeEvents = e
}

// scheduleTimelineEvent enqueues timeline event i at absolute time t and
// records its queue position for checkpointing.
func (s *Service) scheduleTimelineEvent(i int, t float64) {
	ev := s.timeline[i]
	fn := func() {
		s.timelineFired[i] = true
		if ev.Down {
			s.nodeDown(ev.Node)
		} else {
			s.nodeUp(ev.Node)
		}
	}
	s.timelineTime[i] = t
	s.timelineSeq[i] = s.sim.AtTime(t, fn)
}

// Nodes returns the worker-node count.
func (s *Service) Nodes() int { return s.pool.Len() }

// Busy returns the number of nodes currently running jobs.
func (s *Service) Busy() int { return s.pool.Busy() }

// Down returns the number of nodes currently failed.
func (s *Service) Down() int { return s.pool.Down() }

// QueueLen returns the number of jobs waiting for a node.
func (s *Service) QueueLen() int { return len(s.queue) - s.qhead }

// Finished returns the number of successfully completed jobs (JOB_FINISHED
// or RUN_TIMEOUT; FAILED jobs are counted by Failed).
func (s *Service) Finished() int { return s.finished }

// Failed returns the number of jobs that went terminal FAILED.
func (s *Service) Failed() int { return s.failed }

// Retries returns the number of kill-and-requeue cycles performed.
func (s *Service) Retries() int { return s.retries }

// NodeFailures returns the number of node-down events executed so far.
func (s *Service) NodeFailures() int { return s.nodeFailures }

// Pool exposes the node pool (read-only use intended).
func (s *Service) Pool() *NodePool { return s.pool }

// Submit adds a job to the database and triggers the launcher. It returns
// the assigned job ID.
func (s *Service) Submit(job *Job) int64 {
	if job.Duration < 0 {
		panic(fmt.Sprintf("balsam: negative duration %g", job.Duration))
	}
	s.nextID++
	job.ID = s.nextID
	job.State = StateCreated
	job.Node = -1
	job.SubmitTime = s.sim.Now()
	s.jobs[job.ID] = job
	s.queue = append(s.queue, job)
	rec := s.sim.Recorder()
	rec.Emit(trace.Event{Cat: trace.CatBalsam, Name: trace.EvJobSubmit,
		Node: trace.None, Agent: job.AgentID, Job: job.ID, Detail: job.Key})
	rec.Emit(trace.Event{Kind: trace.KindCounter, Cat: trace.CatBalsam, Name: trace.EvQueueDepth,
		Node: trace.None, Agent: trace.None, Value: float64(s.QueueLen())})
	s.dispatch()
	return job.ID
}

// dispatch starts queued jobs while nodes are idle (the pilot-job launcher
// loop).
func (s *Service) dispatch() {
	for len(s.queue) > s.qhead {
		job := s.queue[s.qhead]
		node := s.pool.Acquire(job)
		if node < 0 {
			return
		}
		s.queue[s.qhead] = nil
		s.qhead++
		if s.qhead == len(s.queue) {
			s.queue = s.queue[:0]
			s.qhead = 0
		} else if s.qhead >= 64 && 2*s.qhead >= len(s.queue) {
			// With a standing backlog the queue never drains, so the head
			// index alone would let the backing array grow without bound.
			// Compact in place once the dead prefix dominates: amortized
			// O(1) per dispatch, no allocation, order untouched.
			n := copy(s.queue, s.queue[s.qhead:])
			tail := s.queue[n:]
			for i := range tail {
				tail[i] = nil
			}
			s.queue = s.queue[:n]
			s.qhead = 0
		}
		job.State = StateRunning
		job.Node = node
		job.Attempts++
		job.StartTime = s.sim.Now()
		rec := s.sim.Recorder()
		rec.Emit(trace.Event{Cat: trace.CatBalsam, Name: trace.EvJobRun,
			Node: node, Agent: job.AgentID, Job: job.ID, Value: float64(job.Attempts)})
		rec.Emit(trace.Event{Kind: trace.KindCounter, Cat: trace.CatBalsam, Name: trace.EvQueueDepth,
			Node: trace.None, Agent: trace.None, Value: float64(s.QueueLen())})
		s.updateCounts()
		d := job.Duration
		if s.stragglerRand != nil {
			d *= s.opts.Faults.Straggler(s.stragglerRand)
		}
		e := s.newJobEvent(job, job.Attempts, evComplete)
		e.time, e.seq = s.sim.AtHandlerE(d, e)
		job.fire = e
	}
}

// complete finishes a run, unless the run was killed by a node failure
// first (then the completion event is stale and ignored, beyond dropping
// itself from the stale list). The fired event record is recycled either
// way, and a terminal job is evicted from the job table — it has already
// reported through OnDone, and the table must stay bounded over millions of
// submissions.
func (s *Service) complete(e *jobEvent) {
	job := e.job
	if job.State != StateRunning || job.Attempts != e.attempt {
		s.removeStale(e)
		s.recycle(e)
		return
	}
	if job.TimedOut {
		job.State = StateTimeout
	} else {
		job.State = StateFinished
	}
	job.EndTime = s.sim.Now()
	job.fire = nil
	s.recycle(e)
	delete(s.jobs, job.ID)
	s.finished++
	name := trace.EvJobDone
	if job.TimedOut {
		name = trace.EvJobTimeout
	}
	s.sim.Recorder().Emit(trace.Event{Kind: trace.KindSpan, Cat: trace.CatBalsam, Name: name,
		Dur: job.EndTime - job.StartTime, Node: job.Node, Agent: job.AgentID,
		Job: job.ID, Value: float64(job.Attempts)})
	s.pool.Release(job.Node)
	job.Node = -1
	s.updateCounts()
	if job.OnDone != nil {
		job.OnDone(job)
	}
	s.dispatch()
}

// removeStale drops one orphaned completion event from the stale list once
// it has fired. The caller recycles the record.
func (s *Service) removeStale(e *jobEvent) {
	for i, st := range s.stale {
		if st == e {
			s.stale = append(s.stale[:i], s.stale[i+1:]...)
			return
		}
	}
}

// FailNode injects a scripted node failure (same path as the FaultModel
// timeline): the node goes down and its running job, if any, is killed and
// retried or failed. No-op when the node is already down.
func (s *Service) FailNode(node int) { s.nodeDown(node) }

// RepairNode injects a scripted repair, returning a down node to service.
// No-op when the node is up.
func (s *Service) RepairNode(node int) { s.nodeUp(node) }

// nodeDown fails a node, killing (and retrying or failing) its job.
func (s *Service) nodeDown(node int) {
	if s.pool.State(node) == NodeDown {
		return
	}
	s.nodeFailures++
	s.sim.Recorder().Emit(trace.Event{Cat: trace.CatFault, Name: trace.EvNodeDown,
		Node: node, Agent: trace.None, Value: float64(s.nodeFailures)})
	job := s.pool.JobOn(node)
	s.pool.SetDown(node)
	if job != nil {
		s.kill(job)
	}
	s.updateCounts()
}

// kill transitions a running job to RUN_ERROR and either schedules its
// requeue (capped exponential backoff in virtual time) or fails it
// terminally once its retries are exhausted.
func (s *Service) kill(job *Job) {
	node := job.Node
	job.State = StateRunError
	job.Node = -1
	// The job's in-flight completion event is now orphaned; it fires as a
	// no-op but still advances the clock, so track it for checkpoints.
	if job.fire != nil {
		s.stale = append(s.stale, job.fire)
		job.fire = nil
	}
	if job.Attempts > s.opts.MaxRetries {
		job.State = StateFailed
		job.EndTime = s.sim.Now()
		delete(s.jobs, job.ID)
		s.failed++
		s.sim.Recorder().Emit(trace.Event{Cat: trace.CatBalsam, Name: trace.EvJobFailed,
			Node: node, Agent: job.AgentID, Job: job.ID, Value: float64(job.Attempts)})
		if job.OnDone != nil {
			job.OnDone(job)
		}
		return
	}
	s.retries++
	backoff := s.opts.BackoffBase * math.Pow(2, float64(job.Attempts-1))
	if backoff > s.opts.BackoffCap {
		backoff = s.opts.BackoffCap
	}
	s.sim.Recorder().Emit(trace.Event{Cat: trace.CatBalsam, Name: trace.EvJobError,
		Node: node, Agent: job.AgentID, Job: job.ID, Value: backoff})
	e := s.newJobEvent(job, job.Attempts, evRequeue)
	e.time, e.seq = s.sim.AtHandlerE(backoff, e)
	job.fire = e
}

// requeue puts a killed job back on the launcher queue after its backoff.
func (s *Service) requeue(e *jobEvent) {
	job := e.job
	job.State = StateRestartReady
	job.fire = nil
	s.recycle(e)
	s.queue = append(s.queue, job)
	rec := s.sim.Recorder()
	rec.Emit(trace.Event{Cat: trace.CatBalsam, Name: trace.EvJobRestart,
		Node: trace.None, Agent: job.AgentID, Job: job.ID, Value: float64(job.Attempts)})
	rec.Emit(trace.Event{Kind: trace.KindCounter, Cat: trace.CatBalsam, Name: trace.EvQueueDepth,
		Node: trace.None, Agent: trace.None, Value: float64(s.QueueLen())})
	s.dispatch()
}

// nodeUp repairs a node and resumes dispatching.
func (s *Service) nodeUp(node int) {
	if s.pool.State(node) != NodeDown {
		return
	}
	s.sim.Recorder().Emit(trace.Event{Cat: trace.CatFault, Name: trace.EvNodeUp,
		Node: node, Agent: trace.None})
	s.pool.SetUp(node)
	s.updateCounts()
	s.dispatch()
}

// updateCounts integrates the busy/down node counts up to now and records a
// transition point.
func (s *Service) updateCounts() {
	now := s.sim.Now()
	s.busyIntegral += float64(s.busy) * (now - s.lastChange)
	s.downIntegral += float64(s.down) * (now - s.lastChange)
	s.lastChange = now
	s.busy = s.pool.Busy()
	s.down = s.pool.Down()
	if !s.opts.NoUtilizationSeries {
		s.transitions = append(s.transitions, UtilizationPoint{Time: now, Busy: s.busy, Down: s.down})
	}
	rec := s.sim.Recorder()
	rec.Emit(trace.Event{Kind: trace.KindCounter, Cat: trace.CatBalsam, Name: trace.EvBusyNodes,
		Node: trace.None, Agent: trace.None, Value: float64(s.busy)})
	rec.Emit(trace.Event{Kind: trace.KindCounter, Cat: trace.CatBalsam, Name: trace.EvDownNodes,
		Node: trace.None, Agent: trace.None, Value: float64(s.down)})
}

// BusySeconds returns the integral of busy node count over time.
func (s *Service) BusySeconds() float64 {
	return s.busyIntegral + float64(s.busy)*(s.sim.Now()-s.lastChange)
}

// DeadSeconds returns the integral of failed node count over time.
func (s *Service) DeadSeconds() float64 {
	return s.downIntegral + float64(s.down)*(s.sim.Now()-s.lastChange)
}

// IdleSeconds returns the integral of idle (up, unoccupied) node count.
func (s *Service) IdleSeconds() float64 {
	return float64(s.pool.Len())*s.sim.Now() - s.BusySeconds() - s.DeadSeconds()
}

// MeanUtilization returns the time-averaged busy fraction of *available*
// capacity from t=0 to now: busy node-seconds over total node-seconds minus
// dead node-seconds. On a fault-free machine this is the plain busy
// fraction.
func (s *Service) MeanUtilization() float64 {
	now := s.sim.Now()
	if now == 0 {
		return 0
	}
	avail := float64(s.pool.Len())*now - s.DeadSeconds()
	if avail <= 0 {
		return 0
	}
	return s.BusySeconds() / avail
}

// UtilizationSeries samples the piecewise-constant utilization curve into
// buckets of the given width (seconds), averaging busy capacity over
// available (non-dead) capacity within each bucket — the series plotted in
// the paper's Figures 5, 6, and 9. The final partial bucket is included;
// when now falls exactly on a bucket boundary no zero-width bucket is
// emitted. A bucket whose capacity was entirely dead reads 0.
func (s *Service) UtilizationSeries(bucket float64) []float64 {
	if s.opts.NoUtilizationSeries {
		return nil
	}
	now := s.sim.Now()
	points := append(append([]UtilizationPoint(nil), s.transitions...),
		UtilizationPoint{Time: now, Busy: s.busy, Down: s.down})
	return SeriesFromPoints(points, s.pool.Len(), bucket, now)
}

// SeriesFromPoints samples a piecewise-constant utilization curve — given
// as transition points followed by a final point at time now — into
// buckets, exactly as UtilizationSeries does for a live service. It exists
// so a recorded trace (internal/analytics) can rebuild the same series
// from its nodes.busy/nodes.down counter events.
func SeriesFromPoints(points []UtilizationPoint, nodes int, bucket, now float64) []float64 {
	if bucket <= 0 {
		panic("balsam: bucket must be positive")
	}
	if now == 0 {
		return nil
	}
	nBuckets := int(now / bucket)
	if float64(nBuckets)*bucket < now {
		nBuckets++
	}
	busySec := make([]float64, nBuckets)
	downSec := make([]float64, nBuckets)
	// Integrate the step functions per bucket.
	for i := 0; i+1 < len(points); i++ {
		t0, t1 := points[i].Time, points[i+1].Time
		busy := float64(points[i].Busy)
		down := float64(points[i].Down)
		for t0 < t1 {
			b := int(t0 / bucket)
			end := float64(b+1) * bucket
			if end > t1 {
				end = t1
			}
			if b < nBuckets {
				busySec[b] += busy * (end - t0)
				downSec[b] += down * (end - t0)
			}
			t0 = end
		}
	}
	series := make([]float64, nBuckets)
	for b := range series {
		width := bucket
		if float64(b+1)*bucket > now {
			width = now - float64(b)*bucket
		}
		avail := width*float64(nodes) - downSec[b]
		if avail > 0 {
			series[b] = busySec[b] / avail
		}
	}
	return series
}

// Job returns the job with the given ID, or nil if unknown. Restored
// services only know live (non-terminal) jobs.
func (s *Service) Job(id int64) *Job { return s.jobs[id] }

// JobRecord is one live job in a checkpoint. Payload and OnDone are not
// serialized; the evaluator re-links them after restore via Relink.
type JobRecord struct {
	ID       int64
	AgentID  int
	Key      string
	Duration float64
	TimedOut bool
	State    JobState
	Attempts int
	Node     int

	SubmitTime, StartTime float64

	// HasFire says whether the job has a pending simulator event (the
	// completion event while RUNNING, the requeue event while RUN_ERROR),
	// and FireTime/FireSeq where it sits in the original event queue.
	HasFire  bool
	FireTime float64
	FireSeq  int64
}

// StaleEvent is an orphaned completion event of a killed job: a no-op that
// still advances the virtual clock when it fires.
type StaleEvent struct {
	Time float64
	Seq  int64
}

// TimelineEvent is one not-yet-fired fault-timeline injection, identified by
// its index into the (purely regenerable) timeline.
type TimelineEvent struct {
	Index int
	Time  float64
	Seq   int64
}

// State is the complete serializable state of a Service at a checkpoint
// cut: live jobs (terminal JOB_FINISHED/RUN_TIMEOUT/FAILED jobs have already
// reported through OnDone and are dropped), the launcher queue order, node
// availability, the straggler stream position, utilization accounting, and
// every pending simulator event the service owns.
type State struct {
	NextID int64
	// Queue lists the launcher queue front-to-back by job ID.
	Queue []int64
	// Jobs holds the live jobs, sorted by ID for reproducible encoding.
	Jobs []JobRecord
	// DownNodes lists the node indices currently failed.
	DownNodes []int
	// StragglerRand is nil when stragglers are disabled.
	StragglerRand *rng.State

	LastChange   float64
	Busy, Down   int
	BusyIntegral float64
	DownIntegral float64
	Transitions  []UtilizationPoint

	Finished, Failed, Retries, NodeFailures int

	Stale           []StaleEvent
	PendingTimeline []TimelineEvent
}

// CaptureState snapshots the service. All slices are deep-copied.
func (s *Service) CaptureState() *State {
	st := &State{
		NextID:       s.nextID,
		LastChange:   s.lastChange,
		Busy:         s.busy,
		Down:         s.down,
		BusyIntegral: s.busyIntegral,
		DownIntegral: s.downIntegral,
		Transitions:  append([]UtilizationPoint(nil), s.transitions...),
		Finished:     s.finished,
		Failed:       s.failed,
		Retries:      s.retries,
		NodeFailures: s.nodeFailures,
	}
	for _, job := range s.queue[s.qhead:] {
		st.Queue = append(st.Queue, job.ID)
	}
	for _, job := range s.jobs {
		switch job.State {
		case StateFinished, StateTimeout, StateFailed:
			continue
		}
		rec := JobRecord{
			ID: job.ID, AgentID: job.AgentID, Key: job.Key,
			Duration: job.Duration, TimedOut: job.TimedOut,
			State: job.State, Attempts: job.Attempts, Node: job.Node,
			SubmitTime: job.SubmitTime, StartTime: job.StartTime,
		}
		if job.fire != nil {
			rec.HasFire = true
			rec.FireTime = job.fire.time
			rec.FireSeq = job.fire.seq
		}
		st.Jobs = append(st.Jobs, rec)
	}
	sort.Slice(st.Jobs, func(i, j int) bool { return st.Jobs[i].ID < st.Jobs[j].ID })
	for i := 0; i < s.pool.Len(); i++ {
		if s.pool.State(i) == NodeDown {
			st.DownNodes = append(st.DownNodes, i)
		}
	}
	if s.stragglerRand != nil {
		r := s.stragglerRand.State()
		st.StragglerRand = &r
	}
	for _, e := range s.stale {
		st.Stale = append(st.Stale, StaleEvent{Time: e.time, Seq: e.seq})
	}
	for i := range s.timeline {
		if !s.timelineFired[i] {
			st.PendingTimeline = append(st.PendingTimeline, TimelineEvent{
				Index: i, Time: s.timelineTime[i], Seq: s.timelineSeq[i],
			})
		}
	}
	return st
}

// RestoreService rebuilds a service from a captured state on a simulator
// positioned at the checkpoint's virtual time. It returns the service plus
// the resume events for every pending simulator event the service owned
// (job completions, requeue backoffs, stale completions, fault injections);
// the caller merges them with other components' frontiers and replays them
// through hpc.ScheduleResume. Payload/OnDone of restored jobs are nil until
// the evaluator re-links them.
func RestoreService(sim *hpc.Sim, nodes int, opts Options, st *State) (*Service, []hpc.ResumeEvent) {
	s := newService(sim, nodes, opts)
	s.nextID = st.NextID
	s.lastChange = st.LastChange
	s.busy = st.Busy
	s.down = st.Down
	s.busyIntegral = st.BusyIntegral
	s.downIntegral = st.DownIntegral
	s.transitions = append([]UtilizationPoint(nil), st.Transitions...)
	s.finished = st.Finished
	s.failed = st.Failed
	s.retries = st.Retries
	s.nodeFailures = st.NodeFailures
	if st.StragglerRand != nil {
		s.stragglerRand = rng.FromState(*st.StragglerRand)
	}

	// Every timeline event is presumed fired except those the checkpoint
	// says are still pending.
	for i := range s.timelineFired {
		s.timelineFired[i] = true
	}

	for _, n := range st.DownNodes {
		s.pool.states[n] = NodeDown
		s.pool.down++
	}
	defer s.pool.rebuildIdle() // the job loop below pokes states directly too

	var events []hpc.ResumeEvent
	for _, rec := range st.Jobs {
		rec := rec
		job := &Job{
			ID: rec.ID, AgentID: rec.AgentID, Key: rec.Key,
			Duration: rec.Duration, TimedOut: rec.TimedOut,
			State: rec.State, Attempts: rec.Attempts, Node: rec.Node,
			SubmitTime: rec.SubmitTime, StartTime: rec.StartTime,
		}
		s.jobs[job.ID] = job
		switch job.State {
		case StateRunning:
			s.pool.states[job.Node] = NodeBusy
			s.pool.jobs[job.Node] = job
			s.pool.busy++
			if !rec.HasFire {
				panic(fmt.Sprintf("balsam: restored RUNNING job %d has no completion event", job.ID))
			}
			attempt := job.Attempts
			events = append(events, hpc.ResumeEvent{
				Time: rec.FireTime, Seq: rec.FireSeq,
				Schedule: func() {
					e := s.newJobEvent(job, attempt, evComplete)
					e.time = rec.FireTime
					e.seq = s.sim.AtTimeHandler(rec.FireTime, e)
					job.fire = e
				},
			})
		case StateRunError:
			if !rec.HasFire {
				panic(fmt.Sprintf("balsam: restored RUN_ERROR job %d has no requeue event", job.ID))
			}
			events = append(events, hpc.ResumeEvent{
				Time: rec.FireTime, Seq: rec.FireSeq,
				Schedule: func() {
					e := s.newJobEvent(job, 0, evRequeue)
					e.time = rec.FireTime
					e.seq = s.sim.AtTimeHandler(rec.FireTime, e)
					job.fire = e
				},
			})
		}
	}
	for _, id := range st.Queue {
		job := s.jobs[id]
		if job == nil {
			panic(fmt.Sprintf("balsam: queued job %d missing from checkpoint", id))
		}
		s.queue = append(s.queue, job)
	}
	for _, e := range st.Stale {
		e := e
		events = append(events, hpc.ResumeEvent{
			Time: e.Time, Seq: e.Seq,
			Schedule: func() {
				ev := s.newJobEvent(nil, 0, evStale)
				ev.time = e.Time
				ev.seq = s.sim.AtTimeHandler(e.Time, ev)
				s.stale = append(s.stale, ev)
			},
		})
	}
	for _, te := range st.PendingTimeline {
		te := te
		events = append(events, hpc.ResumeEvent{
			Time: te.Time, Seq: te.Seq,
			Schedule: func() {
				s.timelineFired[te.Index] = false
				s.scheduleTimelineEvent(te.Index, te.Time)
			},
		})
	}
	return s, events
}
