// Package balsam simulates the Balsam workflow service the paper uses to
// run reward-estimation tasks on Theta (§4, Fig. 3): a job database, a
// pilot-job launcher that dispatches queued jobs onto idle worker nodes,
// and the utilization monitoring the paper's Figures 5, 6, and 9 report.
//
// The real Balsam is a Django/PostgreSQL service polled by MPI ranks; here
// the database is in memory and the launcher runs on the discrete-event
// simulator, but the state machine (CREATED → RUNNING → JOB_FINISHED, with
// RUN_TIMEOUT for killed tasks) and the scheduling dynamics — FIFO queue,
// one job per node, dispatch on idle — are preserved, because those
// dynamics are what produce the paper's utilization curves.
package balsam

import (
	"fmt"

	"nasgo/internal/hpc"
)

// JobState is the lifecycle state of a job.
type JobState string

const (
	// StateCreated means queued, waiting for a free node.
	StateCreated JobState = "CREATED"
	// StateRunning means executing on a worker node.
	StateRunning JobState = "RUNNING"
	// StateFinished means completed normally.
	StateFinished JobState = "JOB_FINISHED"
	// StateTimeout means the task hit its wall-clock limit and was killed
	// after producing a partial result.
	StateTimeout JobState = "RUN_TIMEOUT"
)

// Job is one reward-estimation task.
type Job struct {
	ID      int64
	AgentID int
	// Key identifies the architecture being evaluated.
	Key string
	// Duration is the task's virtual execution time in seconds.
	Duration float64
	// TimedOut marks a task that will end in StateTimeout.
	TimedOut bool
	State    JobState

	SubmitTime, StartTime, EndTime float64

	// Payload carries the evaluator's result through the queue; balsam
	// treats it as opaque.
	Payload interface{}
	// OnDone fires when the job completes.
	OnDone func(*Job)
}

// Service is the in-memory job database plus launcher.
type Service struct {
	sim    *hpc.Sim
	nodes  int
	busy   int
	queue  []*Job
	nextID int64

	jobs map[int64]*Job

	// Utilization accounting: integral of busy fraction over time plus a
	// transition log for time series.
	lastChange   float64
	busyIntegral float64
	transitions  []UtilizationPoint

	finished int
}

// UtilizationPoint is one step of the piecewise-constant utilization curve:
// from Time onward, Busy nodes were occupied (until the next point).
type UtilizationPoint struct {
	Time float64
	Busy int
}

// NewService creates a service managing the given number of worker nodes.
func NewService(sim *hpc.Sim, nodes int) *Service {
	if nodes <= 0 {
		panic("balsam: need at least one worker node")
	}
	s := &Service{sim: sim, nodes: nodes, jobs: map[int64]*Job{}}
	s.transitions = append(s.transitions, UtilizationPoint{Time: 0, Busy: 0})
	return s
}

// Nodes returns the worker-node count.
func (s *Service) Nodes() int { return s.nodes }

// Busy returns the number of nodes currently running jobs.
func (s *Service) Busy() int { return s.busy }

// QueueLen returns the number of jobs waiting for a node.
func (s *Service) QueueLen() int { return len(s.queue) }

// Finished returns the number of completed jobs.
func (s *Service) Finished() int { return s.finished }

// Submit adds a job to the database and triggers the launcher. It returns
// the assigned job ID.
func (s *Service) Submit(job *Job) int64 {
	if job.Duration < 0 {
		panic(fmt.Sprintf("balsam: negative duration %g", job.Duration))
	}
	s.nextID++
	job.ID = s.nextID
	job.State = StateCreated
	job.SubmitTime = s.sim.Now()
	s.jobs[job.ID] = job
	s.queue = append(s.queue, job)
	s.dispatch()
	return job.ID
}

// dispatch starts queued jobs while nodes are idle (the pilot-job launcher
// loop).
func (s *Service) dispatch() {
	for len(s.queue) > 0 && s.busy < s.nodes {
		job := s.queue[0]
		s.queue = s.queue[1:]
		s.setBusy(s.busy + 1)
		job.State = StateRunning
		job.StartTime = s.sim.Now()
		s.sim.At(job.Duration, func() { s.complete(job) })
	}
}

func (s *Service) complete(job *Job) {
	if job.TimedOut {
		job.State = StateTimeout
	} else {
		job.State = StateFinished
	}
	job.EndTime = s.sim.Now()
	s.finished++
	s.setBusy(s.busy - 1)
	if job.OnDone != nil {
		job.OnDone(job)
	}
	s.dispatch()
}

func (s *Service) setBusy(n int) {
	now := s.sim.Now()
	s.busyIntegral += float64(s.busy) * (now - s.lastChange)
	s.lastChange = now
	s.busy = n
	s.transitions = append(s.transitions, UtilizationPoint{Time: now, Busy: n})
}

// MeanUtilization returns the time-averaged busy fraction from t=0 to now.
func (s *Service) MeanUtilization() float64 {
	now := s.sim.Now()
	if now == 0 {
		return 0
	}
	integral := s.busyIntegral + float64(s.busy)*(now-s.lastChange)
	return integral / (float64(s.nodes) * now)
}

// UtilizationSeries samples the piecewise-constant utilization curve into
// buckets of the given width (seconds), averaging within each bucket —
// the series plotted in the paper's Figures 5, 6, and 9. The final partial
// bucket is included.
func (s *Service) UtilizationSeries(bucket float64) []float64 {
	if bucket <= 0 {
		panic("balsam: bucket must be positive")
	}
	now := s.sim.Now()
	if now == 0 {
		return nil
	}
	nBuckets := int(now/bucket) + 1
	series := make([]float64, nBuckets)
	// Integrate the step function per bucket.
	points := append(append([]UtilizationPoint(nil), s.transitions...),
		UtilizationPoint{Time: now, Busy: s.busy})
	for i := 0; i+1 < len(points); i++ {
		t0, t1 := points[i].Time, points[i+1].Time
		busy := float64(points[i].Busy)
		for t0 < t1 {
			b := int(t0 / bucket)
			end := float64(b+1) * bucket
			if end > t1 {
				end = t1
			}
			if b < nBuckets {
				series[b] += busy * (end - t0)
			}
			t0 = end
		}
	}
	for b := range series {
		width := bucket
		if float64(b+1)*bucket > now {
			width = now - float64(b)*bucket
		}
		if width > 0 {
			series[b] /= width * float64(s.nodes)
		}
	}
	return series
}
