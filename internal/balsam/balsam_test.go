package balsam

import (
	"math"
	"testing"

	"nasgo/internal/hpc"
)

func TestFIFODispatchAndQueueing(t *testing.T) {
	sim := hpc.NewSim()
	s := NewService(sim, 2)
	var done []string
	submit := func(key string, d float64) {
		s.Submit(&Job{Key: key, Duration: d, OnDone: func(j *Job) {
			done = append(done, j.Key)
			if j.State != StateFinished {
				t.Errorf("job %s state %s", j.Key, j.State)
			}
		}})
	}
	sim.At(0, func() {
		submit("a", 10)
		submit("b", 5)
		submit("c", 1) // queued behind a and b
	})
	sim.Run(4)
	if s.Busy() != 2 || s.QueueLen() != 1 {
		t.Fatalf("busy %d queue %d", s.Busy(), s.QueueLen())
	}
	sim.RunAll()
	// b finishes at 5, then c starts and finishes at 6, a at 10.
	if len(done) != 3 || done[0] != "b" || done[1] != "c" || done[2] != "a" {
		t.Fatalf("completion order %v", done)
	}
	if s.Finished() != 3 {
		t.Fatalf("finished = %d", s.Finished())
	}
}

func TestTimeoutState(t *testing.T) {
	sim := hpc.NewSim()
	s := NewService(sim, 1)
	var state JobState
	s.Submit(&Job{Key: "x", Duration: 600, TimedOut: true, OnDone: func(j *Job) { state = j.State }})
	sim.RunAll()
	if state != StateTimeout {
		t.Fatalf("state %s, want %s", state, StateTimeout)
	}
}

func TestJobTimestamps(t *testing.T) {
	sim := hpc.NewSim()
	s := NewService(sim, 1)
	var j1, j2 *Job
	sim.At(0, func() {
		s.Submit(&Job{Key: "1", Duration: 4, OnDone: func(j *Job) { j1 = j }})
		s.Submit(&Job{Key: "2", Duration: 3, OnDone: func(j *Job) { j2 = j }})
	})
	sim.RunAll()
	if j1.StartTime != 0 || j1.EndTime != 4 {
		t.Fatalf("job1 times %g-%g", j1.StartTime, j1.EndTime)
	}
	if j2.SubmitTime != 0 || j2.StartTime != 4 || j2.EndTime != 7 {
		t.Fatalf("job2 times submit %g start %g end %g", j2.SubmitTime, j2.StartTime, j2.EndTime)
	}
}

func TestMeanUtilization(t *testing.T) {
	sim := hpc.NewSim()
	s := NewService(sim, 2)
	// One node busy for 10 s out of 2 nodes × 10 s → 0.5.
	s.Submit(&Job{Key: "a", Duration: 10})
	sim.RunAll()
	if u := s.MeanUtilization(); math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("utilization %g, want 0.5", u)
	}
}

func TestUtilizationSeries(t *testing.T) {
	sim := hpc.NewSim()
	s := NewService(sim, 2)
	// Both nodes busy 0-60, one busy 60-120.
	s.Submit(&Job{Key: "a", Duration: 60})
	s.Submit(&Job{Key: "b", Duration: 120})
	sim.RunAll()
	series := s.UtilizationSeries(60)
	// now=120 is an exact multiple of the bucket: exactly 2 buckets, no
	// spurious zero-width trailing sample.
	if len(series) != 2 {
		t.Fatalf("series length %d: %v", len(series), series)
	}
	if math.Abs(series[0]-1.0) > 1e-12 || math.Abs(series[1]-0.5) > 1e-12 {
		t.Fatalf("series %v, want [1.0 0.5]", series)
	}
}

func TestUtilizationSeriesPartialBucket(t *testing.T) {
	sim := hpc.NewSim()
	s := NewService(sim, 1)
	s.Submit(&Job{Key: "a", Duration: 90})
	sim.RunAll()
	series := s.UtilizationSeries(60)
	// Bucket 0: fully busy; bucket 1 (60-90, partial): fully busy.
	if len(series) != 2 || math.Abs(series[0]-1) > 1e-12 || math.Abs(series[1]-1) > 1e-12 {
		t.Fatalf("series %v", series)
	}
}

func TestBackloggedPoolStaysSaturated(t *testing.T) {
	sim := hpc.NewSim()
	s := NewService(sim, 4)
	for i := 0; i < 100; i++ {
		s.Submit(&Job{Key: "j", Duration: 7})
	}
	sim.RunAll()
	if u := s.MeanUtilization(); u < 0.999 {
		t.Fatalf("backlogged pool utilization %g, want ~1", u)
	}
	if s.Finished() != 100 {
		t.Fatalf("finished %d", s.Finished())
	}
}

func TestZeroDurationJob(t *testing.T) {
	sim := hpc.NewSim()
	s := NewService(sim, 1)
	ran := false
	s.Submit(&Job{Key: "instant", Duration: 0, OnDone: func(*Job) { ran = true }})
	sim.RunAll()
	if !ran {
		t.Fatal("zero-duration job never completed")
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewService(hpc.NewSim(), 1).Submit(&Job{Duration: -1})
}

func TestNoNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewService(hpc.NewSim(), 0)
}
