package balsam

import (
	"fmt"
	"reflect"
	"testing"

	"nasgo/internal/hpc"
	"nasgo/internal/trace"
)

// restoreOpts is the fault cocktail of the capture/restore test: timeline
// failures, stragglers, and retries all active, over a horizon the run
// fully crosses.
func restoreOpts() Options {
	return Options{
		Faults:       hpc.FaultModel{MTBF: 900, MTTR: 150, StragglerProb: 0.25, StragglerSlowdown: 3, Seed: 11},
		FaultHorizon: 3000,
		MaxRetries:   2,
	}
}

// restoreScript injects scripted faults at virtual-time boundaries, the
// same in the baseline and the resumed run: a double failure just before
// the cut (so the checkpoint carries down nodes, a pending requeue backoff,
// and — asserted below — a stale completion event), repairs after it, and a
// second fault cycle deep in the resumed half.
func restoreScript(svc *Service, now float64) {
	switch now {
	case 390:
		svc.FailNode(0)
		svc.FailNode(1)
	case 450:
		svc.RepairNode(0)
		svc.RepairNode(1)
	case 600:
		svc.FailNode(2)
	case 660:
		svc.RepairNode(2)
	}
}

type restoreSummary struct {
	Finished, Failed, Retries, NodeFailures int
	QueueLen, Busy, Down                    int
	BusySeconds, DeadSeconds, IdleSeconds   float64
	MeanUtilization                         float64
	Utilization                             []float64
}

func summarize(svc *Service) restoreSummary {
	return restoreSummary{
		Finished: svc.Finished(), Failed: svc.Failed(),
		Retries: svc.Retries(), NodeFailures: svc.NodeFailures(),
		QueueLen: svc.QueueLen(), Busy: svc.Busy(), Down: svc.Down(),
		BusySeconds: svc.BusySeconds(), DeadSeconds: svc.DeadSeconds(),
		IdleSeconds: svc.IdleSeconds(), MeanUtilization: svc.MeanUtilization(),
		Utilization: svc.UtilizationSeries(500),
	}
}

// TestCaptureRestoreEquivalence is the in-package half of the restore
// story (the search package pins the full byte-identical log): a faulted,
// straggling, retrying machine is captured mid-run at a quiescent point and
// rebuilt with RestoreService + hpc.ScheduleResume on a fresh simulator.
// From the cut onward, the resumed machine must emit exactly the trace the
// uninterrupted one does and land on identical counters, utilization
// integrals, and series.
func TestCaptureRestoreEquivalence(t *testing.T) {
	const (
		nodes   = 6
		cut     = 400.0
		horizon = 3000.0
		window  = 10.0
		maxSub  = 60
	)
	newJob := func(i int) *Job {
		return &Job{AgentID: i % 4, Key: fmt.Sprintf("j%d", i%12), Duration: 50 + 20*float64(i%5)}
	}
	relink := func(svc *Service, submitted *int) func(*Job) {
		var onDone func(*Job)
		onDone = func(j *Job) {
			if *submitted < maxSub {
				*submitted++
				j.Attempts = 0
				svc.Submit(j)
			}
		}
		return onDone
	}

	// Baseline: uninterrupted run, capturing state (and the trace cursor)
	// at the cut.
	sim := hpc.NewSim()
	rec := trace.NewRecorder(0)
	sim.SetRecorder(rec)
	svc := NewServiceWithOptions(sim, nodes, restoreOpts())
	submitted := 0
	onDone := relink(svc, &submitted)
	for i := 0; i < 12; i++ {
		job := newJob(i)
		job.OnDone = onDone
		submitted++
		svc.Submit(job)
	}
	var st *State
	var subAtCut int
	var cutCursor int64
	for now := window; now <= horizon; now += window {
		sim.Run(now)
		restoreScript(svc, now)
		if now == cut {
			st = svc.CaptureState()
			subAtCut = submitted
			cutCursor = rec.Total()
		}
	}
	baseline := summarize(svc)
	baseEvents, _ := rec.EventsSince(cutCursor)

	// The cut must be interesting: down nodes, a stale completion, and a
	// job waiting out its requeue backoff all in the checkpoint.
	if len(st.DownNodes) < 2 {
		t.Fatalf("cut carries %d down nodes, want the 2 scripted ones", len(st.DownNodes))
	}
	if len(st.Stale) == 0 {
		t.Fatal("cut carries no stale completion event; the evStale restore path is untested")
	}
	hasRequeue := false
	for _, rec := range st.Jobs {
		if rec.State == StateRunError && rec.HasFire {
			hasRequeue = true
		}
	}
	if !hasRequeue {
		t.Fatal("cut carries no pending requeue backoff; the evRequeue restore path is untested")
	}
	if len(st.PendingTimeline) == 0 {
		t.Fatal("cut carries no pending timeline events")
	}

	// Resume: fresh simulator at the cut time, restored service, replayed
	// event frontier, relinked callbacks — then the same drive loop.
	sim2 := hpc.NewSimAt(cut)
	rec2 := trace.NewRecorder(0)
	sim2.SetRecorder(rec2)
	svc2, frontier := RestoreService(sim2, nodes, restoreOpts(), st)
	submitted2 := subAtCut
	onDone2 := relink(svc2, &submitted2)
	for _, jr := range st.Jobs {
		svc2.Job(jr.ID).OnDone = onDone2
	}
	hpc.ScheduleResume(frontier)
	for now := cut + window; now <= horizon; now += window {
		sim2.Run(now)
		restoreScript(svc2, now)
	}
	resumed := summarize(svc2)

	if !reflect.DeepEqual(baseline, resumed) {
		t.Fatalf("resumed summary diverged:\nbaseline: %+v\nresumed:  %+v", baseline, resumed)
	}
	if submitted2 != submitted {
		t.Fatalf("resumed run submitted %d jobs, baseline %d", submitted2, submitted)
	}
	resEvents := rec2.Events()
	if len(resEvents) != len(baseEvents) {
		t.Fatalf("resumed trace has %d events, baseline tail has %d", len(resEvents), len(baseEvents))
	}
	for i := range baseEvents {
		if baseEvents[i] != resEvents[i] {
			t.Fatalf("trace diverges at event %d:\nbaseline: %+v\nresumed:  %+v", i, baseEvents[i], resEvents[i])
		}
	}
}

// TestServiceAccessors covers the small read-only surface on a fresh
// machine, including MeanUtilization's t=0 guard.
func TestServiceAccessors(t *testing.T) {
	sim := hpc.NewSim()
	svc := NewService(sim, 4)
	if svc.Nodes() != 4 {
		t.Fatalf("Nodes = %d, want 4", svc.Nodes())
	}
	if svc.Pool().Len() != 4 {
		t.Fatalf("Pool().Len() = %d, want 4", svc.Pool().Len())
	}
	if u := svc.MeanUtilization(); u != 0 {
		t.Fatalf("MeanUtilization at t=0 = %g, want 0", u)
	}
	if svc.Job(99) != nil {
		t.Fatal("Job(99) on an empty service should be nil")
	}
}
