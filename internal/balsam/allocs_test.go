package balsam

import (
	"testing"

	"nasgo/internal/hpc"
	"nasgo/internal/trace"
)

// steadyState builds a service whose jobs recycle forever: every completed
// job resubmits itself from its OnDone, so the machine reaches a fixed
// point — 8 busy nodes, a stable launcher queue, a stable pending-event
// set — and then cycles schedule→dispatch→complete indefinitely. The
// returned step function advances the simulation by one virtual window.
func steadyState(rec *trace.Recorder) func() {
	sim := hpc.NewSim()
	if rec != nil {
		rec.Preallocate()
		sim.SetRecorder(rec)
	}
	svc := NewServiceWithOptions(sim, 8, Options{NoUtilizationSeries: true})
	for i := 0; i < 16; i++ {
		job := &Job{AgentID: i % 4, Key: "steady", Duration: float64(3 + i%5)}
		job.OnDone = func(j *Job) {
			j.Attempts = 0
			svc.Submit(j)
		}
		svc.Submit(job)
	}
	window := 0.0
	return func() {
		window += 200
		sim.Run(window)
	}
}

// TestShortSimAllocs is the simulator counterpart of train's
// TestShortTrainStepAllocs: once warm, a full schedule→dispatch→complete
// cycle — calendar-queue push/pop, the jobEvent free list, the launcher
// ring, the bounded job table, and per-event trace emission — performs zero
// heap allocations, with a recorder attached (preallocated ring, including
// its wrap-around regime) and detached alike. This is the property that
// lets the simbench experiment sustain millions of events without GC
// pressure.
func TestShortSimAllocs(t *testing.T) {
	cases := []struct {
		name string
		rec  *trace.Recorder
	}{
		{"recorder-detached", nil},
		// Small ring: the warmup fills and wraps it, so the measured runs
		// exercise the overwrite path, not just append-into-capacity.
		{"recorder-attached", trace.NewRecorder(1 << 12)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			step := steadyState(tc.rec)
			// Generous warmup: lets the job table's map internals, the
			// event free lists, and the queue ring settle.
			for i := 0; i < 50; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
				t.Fatalf("steady-state simulation window allocated %.1f times, want 0", allocs)
			}
		})
	}
}
