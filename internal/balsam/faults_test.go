package balsam

import (
	"math"
	"testing"

	"nasgo/internal/hpc"
)

// TestStateMachineTransitions drives a job through every legal transition
// by failing its node directly: CREATED → RUNNING → RUN_ERROR →
// RESTART_READY → RUNNING → JOB_FINISHED.
func TestStateMachineTransitions(t *testing.T) {
	sim := hpc.NewSim()
	s := NewServiceWithOptions(sim, 1, Options{BackoffBase: 5})
	var trace []JobState
	job := &Job{Key: "x", Duration: 10}
	sim.At(0, func() {
		s.Submit(job)
		trace = append(trace, job.State) // CREATED is overwritten by dispatch at t=0
	})
	// Peek at the state at chosen times.
	sim.At(1, func() { trace = append(trace, job.State) })  // RUNNING
	sim.At(2, func() { s.nodeDown(0) })                     // kill mid-run
	sim.At(3, func() { trace = append(trace, job.State) })  // RUN_ERROR (backoff)
	sim.At(6, func() { s.nodeUp(0) })                       // repaired before requeue at 7
	sim.At(8, func() { trace = append(trace, job.State) })  // RUNNING again
	sim.At(20, func() { trace = append(trace, job.State) }) // JOB_FINISHED at 17
	sim.RunAll()
	want := []JobState{StateRunning, StateRunning, StateRunError, StateRunning, StateFinished}
	if len(trace) != len(want) {
		t.Fatalf("trace %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %s, want %s (full: %v)", i, trace[i], want[i], trace)
		}
	}
	if job.Attempts != 2 {
		t.Fatalf("attempts %d, want 2", job.Attempts)
	}
	if s.Retries() != 1 || s.Failed() != 0 || s.Finished() != 1 {
		t.Fatalf("retries %d failed %d finished %d", s.Retries(), s.Failed(), s.Finished())
	}
}

// TestRestartReadyState pins the transient RESTART_READY state: a requeued
// job whose nodes are all down waits in RESTART_READY.
func TestRestartReadyState(t *testing.T) {
	sim := hpc.NewSim()
	s := NewServiceWithOptions(sim, 1, Options{BackoffBase: 5})
	job := &Job{Key: "x", Duration: 10}
	sim.At(0, func() { s.Submit(job) })
	sim.At(2, func() { s.nodeDown(0) })
	// Backoff ends at 7 but the node is still down: RESTART_READY.
	sim.At(8, func() {
		if job.State != StateRestartReady {
			t.Errorf("state %s, want %s", job.State, StateRestartReady)
		}
	})
	sim.At(9, func() { s.nodeUp(0) })
	sim.RunAll()
	if job.State != StateFinished {
		t.Fatalf("final state %s", job.State)
	}
	// Second run started at repair time 9, duration 10.
	if job.EndTime != 19 {
		t.Fatalf("end time %g, want 19", job.EndTime)
	}
}

// TestTerminalFailedAfterMaxRetries kills every attempt; the job must go
// FAILED after MaxRetries requeues and fire OnDone exactly once.
func TestTerminalFailedAfterMaxRetries(t *testing.T) {
	sim := hpc.NewSim()
	s := NewServiceWithOptions(sim, 1, Options{MaxRetries: 2, BackoffBase: 1, BackoffCap: 1})
	done := 0
	job := &Job{Key: "doomed", Duration: 100, OnDone: func(*Job) { done++ }}
	sim.At(0, func() { s.Submit(job) })
	// Kill the node shortly after every (re)start: starts at 0, then the
	// node comes back and the retry starts; kill again, etc.
	kill := func() { s.nodeDown(0) }
	heal := func() { s.nodeUp(0) }
	for i := 0; i < 4; i++ {
		off := float64(i * 10)
		sim.At(off+2, kill)
		sim.At(off+5, heal)
	}
	sim.RunAll()
	if job.State != StateFailed {
		t.Fatalf("state %s, want %s", job.State, StateFailed)
	}
	// MaxRetries=2 ⇒ 3 attempts total, 2 requeues.
	if job.Attempts != 3 {
		t.Fatalf("attempts %d, want 3", job.Attempts)
	}
	if s.Retries() != 2 || s.Failed() != 1 || s.Finished() != 0 {
		t.Fatalf("retries %d failed %d finished %d", s.Retries(), s.Failed(), s.Finished())
	}
	if done != 1 {
		t.Fatalf("OnDone fired %d times", done)
	}
}

// TestStaleCompletionIgnored: the completion event of a killed attempt must
// not finish the job's retry early.
func TestStaleCompletionIgnored(t *testing.T) {
	sim := hpc.NewSim()
	s := NewServiceWithOptions(sim, 2, Options{BackoffBase: 1})
	job := &Job{Key: "x", Duration: 10}
	sim.At(0, func() { s.Submit(job) })
	sim.At(4, func() { s.nodeDown(0) }) // kill attempt 1; retry lands on node 1
	sim.RunAll()
	if job.State != StateFinished {
		t.Fatalf("state %s", job.State)
	}
	// Attempt 2 starts at 5 (backoff 1) on node 1 and runs the full 10 s;
	// the stale completion at t=10 must not have ended it.
	if job.EndTime != 15 {
		t.Fatalf("end time %g, want 15", job.EndTime)
	}
	if s.Finished() != 1 {
		t.Fatalf("finished %d, want 1", s.Finished())
	}
}

// TestQueuedJobsSurviveNodeDeath: killing an idle pool's only node must not
// touch queued jobs; they run after repair.
func TestQueuedJobsSurviveNodeDeath(t *testing.T) {
	sim := hpc.NewSim()
	s := NewServiceWithOptions(sim, 1, Options{})
	sim.At(0, func() { s.nodeDown(0) })
	var end float64
	sim.At(1, func() {
		s.Submit(&Job{Key: "q", Duration: 5, OnDone: func(j *Job) { end = j.EndTime }})
	})
	sim.At(10, func() { s.nodeUp(0) })
	sim.RunAll()
	if end != 15 {
		t.Fatalf("end %g, want 15 (start at repair time 10)", end)
	}
}

// TestUtilizationUnderFaults: dead node-seconds must be excluded from the
// available capacity in MeanUtilization and UtilizationSeries.
func TestUtilizationUnderFaults(t *testing.T) {
	sim := hpc.NewSim()
	s := NewServiceWithOptions(sim, 2, Options{})
	// Node 1 dead from 0 to 60; node 0 busy 0-60. Horizon 60.
	sim.At(0, func() {
		s.nodeDown(1)
		s.Submit(&Job{Key: "a", Duration: 60})
	})
	sim.At(60, func() { s.nodeUp(1) })
	sim.RunAll()
	// Busy 60 node-s over available 2*60-60 = 60 node-s → 1.0.
	if u := s.MeanUtilization(); math.Abs(u-1.0) > 1e-12 {
		t.Fatalf("mean utilization %g, want 1.0", u)
	}
	if d := s.DeadSeconds(); math.Abs(d-60) > 1e-12 {
		t.Fatalf("dead seconds %g, want 60", d)
	}
	series := s.UtilizationSeries(30)
	if len(series) != 2 || math.Abs(series[0]-1) > 1e-12 || math.Abs(series[1]-1) > 1e-12 {
		t.Fatalf("series %v, want [1 1]", series)
	}
}

// TestFaultTimelineInjection: a Service built with a real FaultModel sees
// node failures and recovers; all jobs terminate (finished or failed).
func TestFaultTimelineInjection(t *testing.T) {
	sim := hpc.NewSim()
	s := NewServiceWithOptions(sim, 4, Options{
		Faults:       hpc.FaultModel{MTBF: 300, MTTR: 60, Seed: 7},
		FaultHorizon: 3600,
	})
	terminal := 0
	for i := 0; i < 40; i++ {
		s.Submit(&Job{Key: "j", Duration: 90, OnDone: func(*Job) { terminal++ }})
	}
	sim.RunAll()
	if s.NodeFailures() == 0 {
		t.Fatal("expected injected node failures")
	}
	if s.Finished()+s.Failed() != 40 || terminal != 40 {
		t.Fatalf("finished %d + failed %d != 40 (OnDone %d)", s.Finished(), s.Failed(), terminal)
	}
	if s.Failed() > s.NodeFailures() {
		t.Fatalf("failed %d > node failures %d", s.Failed(), s.NodeFailures())
	}
	if s.Busy() != 0 || s.QueueLen() != 0 {
		t.Fatalf("pool not drained: busy %d queue %d", s.Busy(), s.QueueLen())
	}
	// No node may end the run dark: every down event has a matching repair.
	if s.Down() != 0 {
		t.Fatalf("%d nodes still down after RunAll", s.Down())
	}
}

// TestFaultReplayDeterminism: identical options ⇒ identical event history.
func TestFaultReplayDeterminism(t *testing.T) {
	run := func() ([]float64, int, int) {
		sim := hpc.NewSim()
		s := NewServiceWithOptions(sim, 3, Options{
			Faults:       hpc.FaultModel{MTBF: 200, MTTR: 50, StragglerProb: 0.3, Seed: 11},
			FaultHorizon: 2000,
		})
		var ends []float64
		for i := 0; i < 20; i++ {
			s.Submit(&Job{Key: "j", Duration: 70, OnDone: func(j *Job) { ends = append(ends, j.EndTime) }})
		}
		sim.RunAll()
		return ends, s.Retries(), s.NodeFailures()
	}
	e1, r1, f1 := run()
	e2, r2, f2 := run()
	if r1 != r2 || f1 != f2 || len(e1) != len(e2) {
		t.Fatalf("replay diverged: retries %d/%d failures %d/%d len %d/%d", r1, r2, f1, f2, len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("end[%d] %g != %g", i, e1[i], e2[i])
		}
	}
}

// TestStragglerSlowsJob: with StragglerProb=1 every job is slowed by a
// factor in (1, slowdown]; durations must exceed the nominal duration.
func TestStragglerSlowsJob(t *testing.T) {
	sim := hpc.NewSim()
	s := NewServiceWithOptions(sim, 1, Options{
		Faults: hpc.FaultModel{StragglerProb: 1, StragglerSlowdown: 3, Seed: 5},
	})
	var spans []float64
	for i := 0; i < 5; i++ {
		s.Submit(&Job{Key: "j", Duration: 10, OnDone: func(j *Job) {
			spans = append(spans, j.EndTime-j.StartTime)
		}})
	}
	sim.RunAll()
	for i, sp := range spans {
		if sp <= 10 || sp > 30 {
			t.Fatalf("span[%d] = %g, want in (10, 30]", i, sp)
		}
	}
}

// TestNodePool covers the pool's own invariants.
func TestNodePool(t *testing.T) {
	p := NewNodePool(2)
	j := &Job{Key: "a"}
	if n := p.Acquire(j); n != 0 {
		t.Fatalf("first acquire node %d, want 0", n)
	}
	if n := p.Acquire(&Job{Key: "b"}); n != 1 {
		t.Fatalf("second acquire node %d, want 1", n)
	}
	if p.Acquire(&Job{Key: "c"}) != -1 {
		t.Fatal("acquire on full pool should fail")
	}
	if p.Busy() != 2 || p.JobOn(0) != j {
		t.Fatalf("busy %d, jobOn(0) %v", p.Busy(), p.JobOn(0))
	}
	p.Release(1)
	if p.Busy() != 1 || p.State(1) != NodeIdle {
		t.Fatalf("after release: busy %d state %v", p.Busy(), p.State(1))
	}
	p.SetDown(0) // busy node goes down
	if p.Down() != 1 || p.Busy() != 0 || p.JobOn(0) != nil {
		t.Fatalf("after down: down %d busy %d", p.Down(), p.Busy())
	}
	p.SetDown(0) // idempotent
	if p.Down() != 1 {
		t.Fatal("double SetDown changed state")
	}
	p.SetUp(0)
	if p.Down() != 0 || p.State(0) != NodeIdle {
		t.Fatalf("after up: down %d state %v", p.Down(), p.State(0))
	}
	p.SetUp(0) // idempotent on idle
	if p.State(0) != NodeIdle {
		t.Fatal("SetUp on idle node changed state")
	}
}

// TestZeroFaultOptionsMatchesPlainService: with the zero FaultModel the
// fault-aware service must reproduce NewService numbers exactly.
func TestZeroFaultOptionsMatchesPlainService(t *testing.T) {
	type outcome struct {
		ends   []float64
		util   float64
		series []float64
	}
	run := func(mk func(*hpc.Sim) *Service) outcome {
		sim := hpc.NewSim()
		s := mk(sim)
		var o outcome
		for i := 0; i < 9; i++ {
			s.Submit(&Job{Key: "j", Duration: float64(20 + i*7), OnDone: func(j *Job) {
				o.ends = append(o.ends, j.EndTime)
			}})
		}
		sim.RunAll()
		o.util = s.MeanUtilization()
		o.series = s.UtilizationSeries(30)
		return o
	}
	plain := run(func(sim *hpc.Sim) *Service { return NewService(sim, 3) })
	opt := run(func(sim *hpc.Sim) *Service { return NewServiceWithOptions(sim, 3, Options{}) })
	if plain.util != opt.util {
		t.Fatalf("util %g != %g", plain.util, opt.util)
	}
	if len(plain.ends) != len(opt.ends) || len(plain.series) != len(opt.series) {
		t.Fatalf("shape mismatch: %v vs %v", plain, opt)
	}
	for i := range plain.ends {
		if plain.ends[i] != opt.ends[i] {
			t.Fatalf("end[%d] %g != %g", i, plain.ends[i], opt.ends[i])
		}
	}
	for i := range plain.series {
		if plain.series[i] != opt.series[i] {
			t.Fatalf("series[%d] %g != %g", i, plain.series[i], opt.series[i])
		}
	}
}
