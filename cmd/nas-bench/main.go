// Command nas-bench regenerates the paper's evaluation artifacts: every
// figure (4–13) and Table 1, at a chosen scale preset.
//
// Examples:
//
//	nas-bench -exp table1 -scale quick
//	nas-bench -exp fig9 -scale default
//	nas-bench -exp all -scale quick -out results/
//
// Search runs are memoized in-process, so "-exp all" shares runs between
// figures exactly as the paper's campaign did.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nasgo"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (fig4..fig13, table1, faults, ...) or 'all'")
		scale = flag.String("scale", "quick", "scale preset: quick, default, or paper")
		out   = flag.String("out", "bench_results", "write each rendering to <out>/<exp>.txt ('' disables)")
	)
	flag.Parse()

	sc, err := nasgo.ExperimentScaleByName(*scale)
	if err != nil {
		log.Fatal(err)
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = nasgo.ExperimentNames()
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	for _, id := range ids {
		start := time.Now()
		text, err := nasgo.RenderExperiment(id, sc)
		if err != nil {
			log.Fatal(err)
		}
		banner := fmt.Sprintf("==== %s (scale=%s, %s) ", id, *scale, time.Since(start).Round(time.Second))
		fmt.Printf("%s%s\n%s\n", banner, strings.Repeat("=", max(0, 74-len(banner))), text)
		if *out != "" {
			path := filepath.Join(*out, id+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
