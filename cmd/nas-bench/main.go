// Command nas-bench regenerates the paper's evaluation artifacts: every
// figure (4–13) and Table 1, at a chosen scale preset.
//
// Examples:
//
//	nas-bench -exp table1 -scale quick
//	nas-bench -exp fig9 -scale default
//	nas-bench -exp all -scale quick -out results/
//	nas-bench -exp restart -walltime 1200 -checkpoint results/ckpt
//	nas-bench -exp restart -trace results/restart.trace.jsonl
//	nas-bench -exp workers -workers 0  # time the evaluator pool at GOMAXPROCS
//	nas-bench -exp simbench            # DES-core throughput: events/sec, bytes/event
//	nas-bench -exp tournament          # 4 strategies × common seed set on the tabular benchmark
//	nas-bench -resume results/ckpt/alloc-001.ckpt -trace resumed.trace.jsonl
//	nas-bench -torture -scale quick  # power-cut every fs op of a campaign
//
// Search runs are memoized in-process, so "-exp all" shares runs between
// figures exactly as the paper's campaign did. The restart experiment
// splits one search across walltime-bounded allocations chained through
// checkpoint files; -resume continues any saved search checkpoint to
// completion.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"nasgo"
	"nasgo/internal/campaign"
	"nasgo/internal/experiments"
	"nasgo/internal/trace"
)

// stopRequested polls for SIGINT/SIGTERM. Experiments and resume chains
// check it at their safe boundaries — between experiments, and between
// walltime allocations (where the checkpoint file is already rewritten) —
// so a signal never loses completed work.
var stopRequested func() bool

func notifyStop() func() bool {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	return func() bool {
		select {
		case s := <-sig:
			fmt.Printf("\n%v: stopping at the next safe boundary\n", s)
			return true
		default:
			return false
		}
	}
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig4..fig13, table1, faults, restart, workers, simbench, tournament, ...) or 'all'")
		scale    = flag.String("scale", "quick", "scale preset: quick, default, or paper")
		workers  = flag.Int("workers", 1, "concurrent reward-estimation trainings on the host (0 = GOMAXPROCS, 1 = serial); results are bit-identical at any setting")
		out      = flag.String("out", "bench_results", "write each rendering to <out>/<exp>.txt ('' disables)")
		walltime = flag.Float64("walltime", 0, "restart experiment: virtual seconds per allocation (0 derives a third of the run)")
		ckptDir  = flag.String("checkpoint", "", "restart experiment: keep the chain's checkpoint files in this directory")
		resume   = flag.String("resume", "", "continue a search checkpoint file to completion, rewriting it at each further walltime cut (skips -exp)")
		tracePth = flag.String("trace", "", "record the run's event trace as JSONL (only with -resume or -exp restart)")
		torture  = flag.Bool("torture", false, "crash-point torture: simulate a power cut at every mutating filesystem op of a campaign, honest and fsync-lying, and verify recovery (skips -exp)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage of nas-bench:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), `
on-signal: SIGINT/SIGTERM stops at the next safe boundary — after the
current experiment, or (with -resume) after the current walltime allocation,
whose checkpoint file is already rewritten; rerun with the same flags to
continue.
`)
	}
	flag.Parse()
	stopRequested = notifyStop()

	if *torture {
		runTorture(*scale, *out)
		return
	}
	if *resume != "" {
		resumeChain(*resume, *tracePth)
		return
	}
	if *tracePth != "" && *exp != "restart" {
		log.Fatal("-trace requires -resume or -exp restart")
	}

	sc, err := nasgo.ExperimentScaleByName(*scale)
	if err != nil {
		log.Fatal(err)
	}
	sc.EvalWorkers = *workers
	ids := []string{*exp}
	if *exp == "all" {
		ids = nasgo.ExperimentNames()
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	for n, id := range ids {
		if stopRequested() {
			fmt.Printf("stopped before %s (%d/%d experiments done); rerun to regenerate the rest\n",
				id, n, len(ids))
			return
		}
		start := time.Now()
		var text string
		if id == "restart" && (*walltime > 0 || *ckptDir != "" || *tracePth != "") {
			text = experiments.RestartWith(sc, experiments.RestartOpts{
				Walltime: *walltime, CheckpointDir: *ckptDir, TracePath: *tracePth,
			}).Render()
			if *tracePth != "" {
				fmt.Printf("chained-run trace written to %s\n", *tracePth)
			}
		} else {
			text, err = nasgo.RenderExperiment(id, sc)
			if err != nil {
				log.Fatal(err)
			}
		}
		banner := fmt.Sprintf("==== %s (scale=%s, %s) ", id, *scale, time.Since(start).Round(time.Second))
		fmt.Printf("%s%s\n%s\n", banner, strings.Repeat("=", max(0, 74-len(banner))), text)
		if *out != "" {
			path := filepath.Join(*out, id+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// runTorture enumerates a simulated power cut at every mutating filesystem
// operation of a small deterministic campaign (DESIGN.md §13): record the
// campaign once over the in-memory filesystem, replay its operation tape
// into a cut at each index, reopen the surviving bytes, and resume —
// asserting old-or-new recovery and a byte-identical final log at every
// point, then repeating the sweep with fsync-lying storage. The report is
// written to <out>/torture.txt; any violated invariant is fatal.
func runTorture(scale, out string) {
	spec := campaign.Spec{
		Bench:         "Combo",
		Strategy:      "a2c",
		Agents:        2,
		Workers:       2,
		Horizon:       400,
		Walltime:      100,
		Seed:          99,
		RealEpochs:    1,
		RealBatchSize: 64,
	}
	// Larger presets stretch the walltime chain (more allocations = more
	// crash points); the per-allocation work stays scaled-down.
	switch scale {
	case "default":
		spec.Horizon = 800
	case "paper":
		spec.Horizon = 1600
	}
	start := time.Now()
	rep, err := campaign.TortureCampaign(spec, campaign.TortureOptions{
		Opts: campaign.Options{
			BackoffBase: time.Millisecond,
			BackoffCap:  4 * time.Millisecond,
			Logf:        log.Printf,
		},
		Lies: true,
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("torture: invariant violated: %v", err)
	}
	repJSON, err := json.MarshalIndent(rep, "", " ")
	if err != nil {
		log.Fatal(err)
	}
	text := fmt.Sprintf(`crash-point torture: all invariants held (scale=%s, %s)

%d-op tape, %d crash points enumerated twice (honest + fsync-lying disk).
Every cut left a store that reopened with committed state intact, and every
resume replayed to a final log byte-identical to the uninterrupted run.
%d distinct surviving images (%d live resumes, the rest memoized);
%d cuts predate the first durable meta; %d lying-disk cuts were detected
and rejected, %d still resumed identically.

%s
`, scale, time.Since(start).Round(time.Second),
		rep.TapeLen, rep.CrashPoints, rep.DistinctImages, rep.LiveResumes,
		rep.EmptyStores, rep.LieUnreadable, rep.LieResumed, repJSON)
	fmt.Print(text)
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(out, "torture.txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report written to %s\n", path)
	}
}

// resumeChain continues a checkpointed search allocation by allocation
// until it completes, rewriting the checkpoint file at every walltime cut
// so a killed process can pick up where it left off. With tracePath, one
// recorder follows the whole chain and its seamless trace is written when
// the search completes.
func resumeChain(path, tracePath string) {
	ck, err := nasgo.LoadSearchCheckpoint(path)
	if err != nil {
		log.Fatal(err)
	}
	var rec *nasgo.TraceRecorder
	if tracePath != "" {
		rec = nasgo.NewTraceRecorder(0)
	}
	bench, err := nasgo.NewBenchmark(ck.Bench, nasgo.BenchmarkConfig{Seed: ck.Config.Seed})
	if err != nil {
		log.Fatal(err)
	}
	sp, err := nasgo.NewSpace(ck.SpaceName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resuming %s on %s/%s: allocation %d, virtual time %.0f s, walltime %.0f s\n",
		strings.ToUpper(ck.Config.Strategy), ck.Bench, ck.SpaceName, ck.Allocations+1, ck.Now, ck.Config.Walltime)
	for {
		res, next, err := nasgo.ResumeSearchAllocationTraced(bench, sp, ck, rec)
		if err != nil {
			log.Fatal(err)
		}
		if next == nil {
			fmt.Printf("search complete: %d results, end %.0f virtual s, converged=%v\n",
				len(res.Results), res.EndTime, res.Converged)
			if rec != nil {
				writeTraceJSONL(rec, tracePath)
			}
			return
		}
		if err := next.WriteFile(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("allocation %d cut at %.0f virtual s: checkpoint rewritten to %s\n",
			next.Allocations, next.Now, path)
		if stopRequested() {
			fmt.Printf("stopped at the allocation boundary; continue with: nas-bench -resume %s\n", path)
			return
		}
		ck = next
	}
}

// writeTraceJSONL saves the recorded chain trace and prints its digest.
func writeTraceJSONL(rec *nasgo.TraceRecorder, path string) {
	events := rec.Events()
	if dropped := rec.Dropped(); dropped > 0 {
		fmt.Printf("trace ring overflowed: %d oldest events dropped\n", dropped)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.WriteJSONL(f, events); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d events written to %s (sha256 %x)\n",
		len(events), path, trace.Digest(events))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
