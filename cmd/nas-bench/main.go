// Command nas-bench regenerates the paper's evaluation artifacts: every
// figure (4–13) and Table 1, at a chosen scale preset.
//
// Examples:
//
//	nas-bench -exp table1 -scale quick
//	nas-bench -exp fig9 -scale default
//	nas-bench -exp all -scale quick -out results/
//	nas-bench -exp restart -walltime 1200 -checkpoint results/ckpt
//	nas-bench -resume results/ckpt/alloc-001.ckpt
//
// Search runs are memoized in-process, so "-exp all" shares runs between
// figures exactly as the paper's campaign did. The restart experiment
// splits one search across walltime-bounded allocations chained through
// checkpoint files; -resume continues any saved search checkpoint to
// completion.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nasgo"
	"nasgo/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig4..fig13, table1, faults, restart, ...) or 'all'")
		scale    = flag.String("scale", "quick", "scale preset: quick, default, or paper")
		out      = flag.String("out", "bench_results", "write each rendering to <out>/<exp>.txt ('' disables)")
		walltime = flag.Float64("walltime", 0, "restart experiment: virtual seconds per allocation (0 derives a third of the run)")
		ckptDir  = flag.String("checkpoint", "", "restart experiment: keep the chain's checkpoint files in this directory")
		resume   = flag.String("resume", "", "continue a search checkpoint file to completion, rewriting it at each further walltime cut (skips -exp)")
	)
	flag.Parse()

	if *resume != "" {
		resumeChain(*resume)
		return
	}

	sc, err := nasgo.ExperimentScaleByName(*scale)
	if err != nil {
		log.Fatal(err)
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = nasgo.ExperimentNames()
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	for _, id := range ids {
		start := time.Now()
		var text string
		if id == "restart" && (*walltime > 0 || *ckptDir != "") {
			text = experiments.RestartWith(sc, experiments.RestartOpts{
				Walltime: *walltime, CheckpointDir: *ckptDir,
			}).Render()
		} else {
			text, err = nasgo.RenderExperiment(id, sc)
			if err != nil {
				log.Fatal(err)
			}
		}
		banner := fmt.Sprintf("==== %s (scale=%s, %s) ", id, *scale, time.Since(start).Round(time.Second))
		fmt.Printf("%s%s\n%s\n", banner, strings.Repeat("=", max(0, 74-len(banner))), text)
		if *out != "" {
			path := filepath.Join(*out, id+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// resumeChain continues a checkpointed search allocation by allocation
// until it completes, rewriting the checkpoint file at every walltime cut
// so a killed process can pick up where it left off.
func resumeChain(path string) {
	ck, err := nasgo.LoadSearchCheckpoint(path)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := nasgo.NewBenchmark(ck.Bench, nasgo.BenchmarkConfig{Seed: ck.Config.Seed})
	if err != nil {
		log.Fatal(err)
	}
	sp, err := nasgo.NewSpace(ck.SpaceName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resuming %s on %s/%s: allocation %d, virtual time %.0f s, walltime %.0f s\n",
		strings.ToUpper(ck.Config.Strategy), ck.Bench, ck.SpaceName, ck.Allocations+1, ck.Now, ck.Config.Walltime)
	for {
		res, next, err := nasgo.ResumeSearchAllocation(bench, sp, ck)
		if err != nil {
			log.Fatal(err)
		}
		if next == nil {
			fmt.Printf("search complete: %d results, end %.0f virtual s, converged=%v\n",
				len(res.Results), res.EndTime, res.Converged)
			return
		}
		if err := next.WriteFile(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("allocation %d cut at %.0f virtual s: checkpoint rewritten to %s\n",
			next.Allocations, next.Now, path)
		ck = next
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
