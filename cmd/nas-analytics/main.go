// Command nas-analytics inspects a saved search log: reward trajectory,
// utilization over time, summary statistics, and the top architectures —
// the paper's analytics module (§4) as a CLI.
//
// Example:
//
//	nas-analytics -log combo.json -bucket 300 -tsv combo-traj.tsv
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"nasgo"
	"nasgo/internal/analytics"
	"nasgo/internal/report"
)

func main() {
	var (
		logPath = flag.String("log", "", "search log JSON written by nas-search (required)")
		bucket  = flag.Float64("bucket", 300, "trajectory bucket in virtual seconds")
		topK    = flag.Int("top", 10, "top architectures to list")
		tsv     = flag.String("tsv", "", "write the trajectory series as TSV to this path")
	)
	flag.Parse()
	if *logPath == "" {
		log.Fatal("nas-analytics: -log is required")
	}
	res, err := nasgo.LoadSearchLog(*logPath)
	if err != nil {
		log.Fatal(err)
	}

	s := analytics.Summarize(res.Results)
	fmt.Printf("run: %s on %s, strategy=%s, %d agents × %d workers\n",
		res.SpaceName, res.Bench, res.Config.Strategy, res.Config.Agents, res.Config.WorkersPerAgent)
	fmt.Printf("ended at %.0f virtual min (converged=%v)\n", res.EndTime/60, res.Converged)
	fmt.Printf("evaluations=%d cacheHits=%d unique=%d timeouts=%d\n",
		s.Evaluations, s.CacheHits, s.UniqueArchs, s.TimedOut)
	fmt.Printf("best=%.4f mean=%.4f\n", s.BestReward, s.MeanReward)
	fmt.Printf("parameter server: %d exchanges, %d sync rounds, mean staleness %.2f\n\n",
		res.PS.Exchanges, res.PS.Rounds, res.PS.MeanStaleness)

	traj := analytics.Trajectory(res.Results, *bucket, res.EndTime)
	xs := make([]float64, len(traj))
	best := make([]float64, len(traj))
	mean := make([]float64, len(traj))
	for i, p := range traj {
		xs[i] = p.Time / 60
		best[i] = p.Best
		mean[i] = p.Mean
	}
	fmt.Print(report.Chart("reward over time", "time (min)", "reward",
		[]report.Series{{Name: "best", X: xs, Y: best}, {Name: "mean", X: xs, Y: mean}}, 70, 14))

	ux := make([]float64, len(res.Utilization))
	for i := range ux {
		ux[i] = float64(i) * res.UtilBucket / 60
	}
	fmt.Println()
	fmt.Print(report.Chart("utilization over time", "time (min)", "busy fraction",
		[]report.Series{{Name: "util", X: ux, Y: res.Utilization}}, 70, 10))

	fmt.Printf("\ntop %d architectures:\n", *topK)
	rows := make([][]string, 0, *topK)
	for i, r := range res.TopK(*topK) {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1), report.F(r.Reward),
			fmt.Sprintf("%d", r.Params), fmt.Sprintf("%.0f", r.FinishTime/60),
		})
	}
	fmt.Print(report.Table([]string{"rank", "reward", "params(paper)", "found at min"}, rows))

	if *tsv != "" {
		rowsT := make([][]string, 0, len(traj))
		for i := range traj {
			m := mean[i]
			if math.IsNaN(m) {
				continue
			}
			rowsT = append(rowsT, []string{
				fmt.Sprintf("%.1f", xs[i]), fmt.Sprintf("%.5f", best[i]), fmt.Sprintf("%.5f", m),
			})
		}
		if err := report.WriteTSV(*tsv, []string{"minute", "best", "mean"}, rowsT); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrajectory written to %s\n", *tsv)
	}
}
