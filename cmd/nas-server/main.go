// Command nas-server is the long-lived campaign service: a JSON HTTP API
// hosting many concurrent NAS search campaigns, each a walltime-chained
// sequence of allocations driven through the crash-consistent checkpoint
// machinery. Kill the process at any point — kill -9 included — and a
// restart over the same -store directory resumes every running campaign
// from its last persisted boundary, replaying to the same final log byte
// for byte as an uninterrupted nas-search run.
//
//	nas-server -addr :8080 -store nas-campaigns
//
//	curl -s localhost:8080/campaigns -d '{"bench":"Combo","strategy":"a2c",
//	    "agents":4,"workers":4,"horizon":3600,"walltime":900,"seed":42}'
//	curl -s localhost:8080/campaigns/c00000001
//	curl -s localhost:8080/campaigns/c00000001/log
//	curl -s localhost:8080/campaigns/c00000001/trace?since=0
//	curl -s -X POST localhost:8080/campaigns/c00000001/pause
//	curl -s localhost:8080/leaderboard
//
// On SIGINT/SIGTERM the server drains: it stops accepting submissions,
// lets every running campaign cut at its next walltime boundary (where its
// checkpoint is already persisted), flushes the store, and exits; the next
// start resumes the drained campaigns automatically.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nasgo/internal/campaign"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		store      = flag.String("store", "nas-campaigns", "campaign store directory (crash-consistent; reuse it across restarts)")
		maxBody    = flag.Int64("max-body", 0, "request body size limit in bytes (0 = default 64 KiB)")
		reqTimeout = flag.Duration("req-timeout", 30*time.Second, "per-request timeout")
		drainWait  = flag.Duration("drain-timeout", 2*time.Minute, "graceful-drain budget on SIGINT/SIGTERM before forcing exit")
	)
	flag.Parse()

	mgr, quarantined, err := campaign.NewManager(*store, campaign.Options{Logf: log.Printf})
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range quarantined {
		log.Printf("store: quarantined unreadable campaign directory %s", id)
	}
	mgr.Start()

	srv := &http.Server{
		Addr: *addr,
		Handler: campaign.NewServer(mgr, campaign.ServerOptions{
			MaxBodyBytes:   *maxBody,
			RequestTimeout: *reqTimeout,
		}).Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("signal %v: draining (campaigns cut at their next walltime boundary)", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		done := make(chan struct{})
		go func() {
			mgr.Drain()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			log.Printf("drain timed out after %v; persisted state is still consistent", *drainWait)
		}
		_ = srv.Shutdown(ctx)
	}()

	<-mgr.Ready()
	log.Printf("nas-server ready on %s (store %s, %d campaigns loaded)",
		*addr, *store, len(mgr.List()))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	select {
	case <-mgr.Done():
		log.Printf("nas-server drained cleanly")
	case <-time.After(*drainWait):
		log.Printf("exiting with drain incomplete; persisted state is still consistent")
	}
}
