// Command nas-posttrain retrains the top architectures of a saved search
// log for the paper's 20 epochs on the full training data and compares them
// to the manually designed baseline on the paper's three ratios (accuracy,
// trainable parameters, training time).
//
// Example:
//
//	nas-search -bench Combo -out combo.json
//	nas-posttrain -log combo.json -top 20
package main

import (
	"flag"
	"fmt"
	"log"

	"nasgo"
	"nasgo/internal/report"
)

func main() {
	var (
		logPath  = flag.String("log", "", "search log JSON written by nas-search (required)")
		topK     = flag.Int("top", 20, "how many top architectures to post-train (paper: 50)")
		epochs   = flag.Int("epochs", 20, "post-training epochs (paper: 20)")
		seed     = flag.Uint64("seed", 42, "post-training seed")
		saveBest = flag.String("save-best", "", "save the best post-trained model to this path")
	)
	flag.Parse()
	if *logPath == "" {
		log.Fatal("nas-posttrain: -log is required")
	}
	res, err := nasgo.LoadSearchLog(*logPath)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := nasgo.NewBenchmark(res.Bench, nasgo.BenchmarkConfig{Seed: res.Config.Seed})
	if err != nil {
		log.Fatal(err)
	}
	sp, err := nasgo.NewSpace(res.SpaceName)
	if err != nil {
		log.Fatal(err)
	}

	rep := nasgo.PostTrain(bench, sp, res.TopK(*topK), nasgo.PostTrainConfig{
		Epochs: *epochs, Seed: *seed, KeepModels: *saveBest != "",
	})
	fmt.Printf("post-training %d architectures from %s (%s, %d epochs)\n",
		len(rep.Entries), *logPath, bench.Name, *epochs)
	fmt.Printf("baseline: metric=%.4f params=%d trainTime=%.2fs\n\n",
		rep.BaselineMetric, rep.BaselineParams, rep.BaselineTime)

	rep.SortByMetric()
	rows := make([][]string, 0, len(rep.Entries))
	for _, e := range rep.Entries {
		rows = append(rows, []string{
			fmt.Sprintf("%d", e.Rank), report.F(e.EstReward), report.F(e.Metric),
			fmt.Sprintf("%d", e.Params), fmt.Sprintf("%.2f", e.TrainTime),
			report.F(e.AccRatio), report.F(e.ParamsRatio), report.F(e.TimeRatio),
		})
	}
	fmt.Print(report.Table(
		[]string{"rank", "est", "metric", "params", "train s", "acc-ratio", "Pb/P", "Tb/T"}, rows))

	if best := rep.Best(); best != nil {
		fmt.Printf("\nbest: metric=%.4f, %.1fx fewer parameters, %.1fx faster training\n",
			best.Metric, best.ParamsRatio, best.TimeRatio)
		fmt.Printf("architecture: %s\n", sp.Describe(best.Choices))
		if *saveBest != "" {
			err := nasgo.SaveModel(*saveBest, sp, best.Choices, bench.Train.InputDims(), bench.UnitScale, best.Model)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("best model saved to %s\n", *saveBest)
		}
	}
}
