// Command nas-search runs one multi-agent NAS search on a CANDLE benchmark
// and prints its summary, reward trajectory, and top architectures. The
// full trace can be saved as JSON for nas-analytics and nas-posttrain.
//
// With -walltime the run is split into scheduler allocations of virtual
// seconds: each boundary writes a crash-consistent checkpoint, -allocations
// chains several in one process, and a later invocation continues with
// -resume, reproducing the uninterrupted run bit-for-bit. SIGINT/SIGTERM
// stops the chain at the next walltime boundary — the checkpoint is already
// on disk, so nothing is lost.
//
// Examples:
//
//	nas-search -bench Combo -space small -strategy a3c \
//	    -agents 8 -workers 5 -horizon 10800 -out combo-a3c.json
//	nas-search -bench Combo -walltime 3600 -checkpoint combo.ckpt
//	nas-search -resume combo.ckpt -checkpoint combo.ckpt -allocations 0
//	nas-search -bench Combo -trace combo.trace.jsonl -trace-chrome combo.trace.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"nasgo"
	"nasgo/internal/analytics"
	"nasgo/internal/report"
	"nasgo/internal/trace"
)

// notifyStop registers the graceful-stop signals and returns a poll
// function: true once SIGINT or SIGTERM has arrived. Allocations are pure
// virtual-time compute and cannot be interrupted mid-flight, so the chain
// polls at each walltime boundary — the only cut points where the search
// state is checkpointable.
func notifyStop() func() bool {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	return func() bool {
		select {
		case s := <-sig:
			fmt.Printf("\n%v: stopping at the walltime boundary\n", s)
			return true
		default:
			return false
		}
	}
}

func main() {
	var (
		benchName = flag.String("bench", "Combo", "benchmark: Combo, Uno, or NT3")
		spaceSize = flag.String("space", "small", "search space size: small or large")
		strategy  = flag.String("strategy", "a3c", "search strategy: a3c, a2c, or rdm")
		agents    = flag.Int("agents", 8, "number of RL agents (paper: 21)")
		workers   = flag.Int("workers", 5, "architectures per agent per round (paper: 11)")
		horizon   = flag.Float64("horizon", 3*3600, "virtual wall-clock budget in seconds (paper: 21600)")
		fidelity  = flag.Float64("fidelity", 0, "training-data fraction for reward estimation (0 = benchmark default)")
		evalWork  = flag.Int("eval-workers", 1, "concurrent reward-estimation trainings on the host (0 = GOMAXPROCS, 1 = serial); results are bit-identical at any setting")
		seed      = flag.Uint64("seed", 42, "root seed (runs are deterministic in it)")
		topK      = flag.Int("top", 10, "top architectures to print")
		out       = flag.String("out", "", "write the full search log as JSON to this path")
		walltime  = flag.Float64("walltime", 0, "virtual seconds per allocation; 0 runs to completion in one process")
		ckptPath  = flag.String("checkpoint", "nas-search.ckpt", "path for the checkpoint written when -walltime cuts the run")
		resume    = flag.String("resume", "", "continue from a checkpoint written by an earlier -walltime invocation (other search flags are taken from the checkpoint)")
		allocs    = flag.Int("allocations", 1, "walltime allocations to chain in this process (0 or less: chain until the search completes); the checkpoint is rewritten at every boundary")
		tracePath = flag.String("trace", "", "record the run's event trace as JSONL to this path (with -resume, the trace covers the chained allocations)")
		chromeOut = flag.String("trace-chrome", "", "also write the trace in Chrome trace_event JSON (open in Perfetto or chrome://tracing)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage of nas-search:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), `
on-signal: SIGINT/SIGTERM stops a -walltime chain at the next walltime-safe
boundary — the checkpoint for every completed allocation is already on disk
(atomic rename + directory fsync), so the run resumes with -resume and
replays bit-for-bit identical to never having been interrupted.
`)
	}
	flag.Parse()
	stopping := notifyStop()

	var rec *nasgo.TraceRecorder
	if *tracePath != "" || *chromeOut != "" {
		rec = nasgo.NewTraceRecorder(0)
	}

	var (
		bench *nasgo.Benchmark
		sp    *nasgo.Space
		res   *nasgo.SearchLog
		next  *nasgo.SearchCheckpoint
		err   error
	)
	if *resume != "" {
		ck, lerr := nasgo.LoadSearchCheckpoint(*resume)
		if lerr != nil {
			log.Fatal(lerr)
		}
		bench, err = nasgo.NewBenchmark(ck.Bench, nasgo.BenchmarkConfig{Seed: ck.Config.Seed})
		if err != nil {
			log.Fatal(err)
		}
		sp, err = nasgo.NewSpace(ck.SpaceName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resuming %s on %s/%s from %s: allocation %d, virtual time %.0f s\n",
			strings.ToUpper(ck.Config.Strategy), ck.Bench, ck.SpaceName, *resume, ck.Allocations+1, ck.Now)
		res, next, err = nasgo.ResumeSearchAllocationTraced(bench, sp, ck, rec)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		bench, err = nasgo.NewBenchmark(*benchName, nasgo.BenchmarkConfig{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		sp, err = bench.Space(*spaceSize)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("search space %s: %d decisions, %.4g architectures\n",
			sp.Name, sp.NumDecisions(), sp.Size())

		cfg := nasgo.SearchConfig{
			Strategy:        *strategy,
			Agents:          *agents,
			WorkersPerAgent: *workers,
			Horizon:         *horizon,
			Walltime:        *walltime,
			Seed:            *seed,
		}
		cfg.Eval.Fidelity = *fidelity
		cfg.Eval.Workers = *evalWork
		if *walltime > 0 {
			res, next, err = nasgo.RunSearchAllocationTraced(bench, sp, cfg, rec)
			if err != nil {
				log.Fatal(err)
			}
		} else {
			res, err = nasgo.RunSearchTraced(bench, sp, cfg, rec)
			if err != nil {
				log.Fatal(err)
			}
		}
	}

	// Chain further allocations in-process: the checkpoint is rewritten at
	// every boundary, so a hard kill anywhere in the chain loses at most the
	// in-flight allocation. The chain ends at -allocations, at completion,
	// or at the first boundary after a SIGINT/SIGTERM.
	for ran := 1; next != nil && (*allocs <= 0 || ran < *allocs) && !stopping(); ran++ {
		if err := next.WriteFile(*ckptPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("allocation %d cut at %.0f virtual s: checkpoint rewritten to %s\n",
			next.Allocations, next.Now, *ckptPath)
		res, next, err = nasgo.ResumeSearchAllocationTraced(bench, sp, next, rec)
		if err != nil {
			log.Fatal(err)
		}
	}

	if rec != nil {
		writeTrace(rec, *tracePath, *chromeOut)
	}

	if next != nil {
		if err := next.WriteFile(*ckptPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwalltime boundary at %.0f virtual s: checkpoint written to %s\n", next.Now, *ckptPath)
		fmt.Printf("continue with: nas-search -resume %s -checkpoint %s\n", *ckptPath, *ckptPath)
	}

	cfg := res.Config
	s := analytics.Summarize(res.Results)
	partial := ""
	if next != nil {
		partial = " [partial allocation]"
	}
	fmt.Printf("\n%s on %s (%d agents × %d workers, %.0f virtual min)%s\n",
		strings.ToUpper(cfg.Strategy), bench.Name, cfg.Agents, cfg.WorkersPerAgent, res.EndTime/60, partial)
	fmt.Printf("evaluations=%d cacheHits=%d unique=%d timeouts=%d converged=%v\n",
		s.Evaluations, s.CacheHits, s.UniqueArchs, s.TimedOut, res.Converged)
	fmt.Printf("best reward (%s) = %.4f, mean = %.4f\n", bench.Metric, s.BestReward, s.MeanReward)

	traj := analytics.Trajectory(res.Results, 300, res.EndTime)
	xs := make([]float64, len(traj))
	best := make([]float64, len(traj))
	for i, p := range traj {
		xs[i] = p.Time / 60
		best[i] = p.Best
	}
	fmt.Println()
	fmt.Print(report.Chart("best reward over time", "time (min)", bench.Metric,
		[]report.Series{{Name: strings.ToUpper(cfg.Strategy), X: xs, Y: best}}, 70, 12))

	fmt.Printf("\ntop %d architectures by estimated reward:\n", *topK)
	rows := make([][]string, 0, *topK)
	for i, r := range res.TopK(*topK) {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1), report.F(r.Reward), fmt.Sprintf("%d", r.Params),
			fmt.Sprintf("%.0f", r.Duration), fmt.Sprintf("%v", r.TimedOut),
		})
		if i == 0 {
			fmt.Printf("best architecture: %s\n", sp.Describe(r.Choices))
		}
	}
	fmt.Print(report.Table([]string{"rank", "reward", "params(paper)", "eval s", "timeout"}, rows))

	if *out != "" {
		if err := res.WriteJSON(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nfull log written to %s\n", *out)
	}
}

// writeTrace saves the recorded event stream and prints its summary.
func writeTrace(rec *nasgo.TraceRecorder, jsonlPath, chromePath string) {
	events := rec.Events()
	if dropped := rec.Dropped(); dropped > 0 {
		fmt.Printf("\ntrace ring overflowed: %d oldest events dropped\n", dropped)
	}
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteJSONL(f, events); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace: %d events written to %s (sha256 %x)\n",
			len(events), jsonlPath, trace.Digest(events))
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.WriteChrome(f, events); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chrome trace written to %s\n", chromePath)
	}
	fmt.Println()
	fmt.Print(trace.Summarize(events).Format())
}
