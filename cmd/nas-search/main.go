// Command nas-search runs one multi-agent NAS search on a CANDLE benchmark
// and prints its summary, reward trajectory, and top architectures. The
// full trace can be saved as JSON for nas-analytics and nas-posttrain.
//
// Example:
//
//	nas-search -bench Combo -space small -strategy a3c \
//	    -agents 8 -workers 5 -horizon 10800 -out combo-a3c.json
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"nasgo"
	"nasgo/internal/analytics"
	"nasgo/internal/report"
)

func main() {
	var (
		benchName = flag.String("bench", "Combo", "benchmark: Combo, Uno, or NT3")
		spaceSize = flag.String("space", "small", "search space size: small or large")
		strategy  = flag.String("strategy", "a3c", "search strategy: a3c, a2c, or rdm")
		agents    = flag.Int("agents", 8, "number of RL agents (paper: 21)")
		workers   = flag.Int("workers", 5, "architectures per agent per round (paper: 11)")
		horizon   = flag.Float64("horizon", 3*3600, "virtual wall-clock budget in seconds (paper: 21600)")
		fidelity  = flag.Float64("fidelity", 0, "training-data fraction for reward estimation (0 = benchmark default)")
		seed      = flag.Uint64("seed", 42, "root seed (runs are deterministic in it)")
		topK      = flag.Int("top", 10, "top architectures to print")
		out       = flag.String("out", "", "write the full search log as JSON to this path")
	)
	flag.Parse()

	bench, err := nasgo.NewBenchmark(*benchName, nasgo.BenchmarkConfig{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	sp, err := bench.Space(*spaceSize)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search space %s: %d decisions, %.4g architectures\n",
		sp.Name, sp.NumDecisions(), sp.Size())

	cfg := nasgo.SearchConfig{
		Strategy:        *strategy,
		Agents:          *agents,
		WorkersPerAgent: *workers,
		Horizon:         *horizon,
		Seed:            *seed,
	}
	cfg.Eval.Fidelity = *fidelity
	res := nasgo.RunSearch(bench, sp, cfg)

	s := analytics.Summarize(res.Results)
	fmt.Printf("\n%s on %s (%d agents × %d workers, %.0f virtual min)\n",
		strings.ToUpper(*strategy), bench.Name, *agents, *workers, res.EndTime/60)
	fmt.Printf("evaluations=%d cacheHits=%d unique=%d timeouts=%d converged=%v\n",
		s.Evaluations, s.CacheHits, s.UniqueArchs, s.TimedOut, res.Converged)
	fmt.Printf("best reward (%s) = %.4f, mean = %.4f\n", bench.Metric, s.BestReward, s.MeanReward)

	traj := analytics.Trajectory(res.Results, 300, res.EndTime)
	xs := make([]float64, len(traj))
	best := make([]float64, len(traj))
	for i, p := range traj {
		xs[i] = p.Time / 60
		best[i] = p.Best
	}
	fmt.Println()
	fmt.Print(report.Chart("best reward over time", "time (min)", bench.Metric,
		[]report.Series{{Name: strings.ToUpper(*strategy), X: xs, Y: best}}, 70, 12))

	fmt.Printf("\ntop %d architectures by estimated reward:\n", *topK)
	rows := make([][]string, 0, *topK)
	for i, r := range res.TopK(*topK) {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1), report.F(r.Reward), fmt.Sprintf("%d", r.Params),
			fmt.Sprintf("%.0f", r.Duration), fmt.Sprintf("%v", r.TimedOut),
		})
		if i == 0 {
			fmt.Printf("best architecture: %s\n", sp.Describe(r.Choices))
		}
	}
	fmt.Print(report.Table([]string{"rank", "reward", "params(paper)", "eval s", "timeout"}, rows))

	if *out != "" {
		if err := res.WriteJSON(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nfull log written to %s\n", *out)
	}
}
